#include "sim/trace.h"

#include <gtest/gtest.h>

namespace memstream::sim {
namespace {

TEST(TraceTest, CountAndFilterByKind) {
  TraceLog log;
  log.Append({0.0, TraceKind::kCycleStart, "disk", -1, 0, ""});
  log.Append({0.1, TraceKind::kIoCompleted, "disk", 1, 100, ""});
  log.Append({0.2, TraceKind::kIoCompleted, "disk", 2, 100, ""});
  log.Append({0.3, TraceKind::kUnderflow, "stream", 2, 0, ""});
  EXPECT_EQ(log.Count(TraceKind::kIoCompleted), 2);
  EXPECT_EQ(log.Count(TraceKind::kUnderflow), 1);
  EXPECT_EQ(log.Count(TraceKind::kOverflow), 0);
  const auto ios = log.Filter(TraceKind::kIoCompleted);
  ASSERT_EQ(ios.size(), 2u);
  EXPECT_EQ(ios[0].stream_id, 1);
  EXPECT_EQ(ios[1].stream_id, 2);
}

TEST(TraceTest, ToStringIncludesKindAndActor) {
  TraceLog log;
  log.Append({1.5, TraceKind::kNote, "server", -1, 0, "hello"});
  const std::string s = log.ToString();
  EXPECT_NE(s.find("note"), std::string::npos);
  EXPECT_NE(s.find("server"), std::string::npos);
  EXPECT_NE(s.find("hello"), std::string::npos);
}

TEST(TraceTest, ToStringTruncates) {
  TraceLog log;
  for (int i = 0; i < 300; ++i) {
    log.Append({static_cast<double>(i), TraceKind::kNote, "x", -1, 0, ""});
  }
  const std::string s = log.ToString(10);
  EXPECT_NE(s.find("290 more"), std::string::npos);
}

TEST(TraceTest, ClearEmpties) {
  TraceLog log;
  log.Append({0, TraceKind::kNote, "x", -1, 0, ""});
  log.Clear();
  EXPECT_TRUE(log.records().empty());
}

TEST(TraceTest, KindNamesDistinct) {
  EXPECT_STREQ(TraceKindName(TraceKind::kUnderflow), "underflow");
  EXPECT_STREQ(TraceKindName(TraceKind::kOverflow), "overflow");
  EXPECT_STREQ(TraceKindName(TraceKind::kCycleStart), "cycle-start");
  EXPECT_STREQ(TraceKindName(TraceKind::kCycleEnd), "cycle-end");
  EXPECT_STREQ(TraceKindName(TraceKind::kBufferLevel), "buffer-level");
}

TEST(TraceTest, UnboundedByDefault) {
  TraceLog log;
  EXPECT_EQ(log.capacity(), 0u);
  for (int i = 0; i < 1000; ++i) {
    log.Append({static_cast<double>(i), TraceKind::kNote, "x", -1, 0, ""});
  }
  EXPECT_EQ(log.records().size(), 1000u);
  EXPECT_EQ(log.dropped_records(), 0);
}

TEST(TraceTest, BoundedLogEvictsOldestAndCountsDrops) {
  TraceLog log(3);
  for (int i = 0; i < 7; ++i) {
    log.Append({static_cast<double>(i), TraceKind::kNote, "x", -1, 0, ""});
  }
  ASSERT_EQ(log.records().size(), 3u);
  EXPECT_EQ(log.dropped_records(), 4);
  // The newest three survive, still in time order.
  EXPECT_DOUBLE_EQ(log.records()[0].time, 4.0);
  EXPECT_DOUBLE_EQ(log.records()[1].time, 5.0);
  EXPECT_DOUBLE_EQ(log.records()[2].time, 6.0);
}

TEST(TraceTest, SetCapacityShrinksImmediately) {
  TraceLog log;
  for (int i = 0; i < 10; ++i) {
    log.Append({static_cast<double>(i), TraceKind::kNote, "x", -1, 0, ""});
  }
  log.SetCapacity(4);
  EXPECT_EQ(log.records().size(), 4u);
  EXPECT_EQ(log.dropped_records(), 6);
  EXPECT_DOUBLE_EQ(log.records().front().time, 6.0);
  // Growing the cap later keeps retained records.
  log.SetCapacity(100);
  log.Append({99.0, TraceKind::kNote, "x", -1, 0, ""});
  EXPECT_EQ(log.records().size(), 5u);
}

TEST(TraceTest, ClearResetsDropCounter) {
  TraceLog log(1);
  log.Append({0, TraceKind::kNote, "x", -1, 0, ""});
  log.Append({1, TraceKind::kNote, "x", -1, 0, ""});
  EXPECT_EQ(log.dropped_records(), 1);
  log.Clear();
  EXPECT_TRUE(log.records().empty());
  EXPECT_EQ(log.dropped_records(), 0);
}

TEST(TraceTest, RecordsCarryOptionalDuration) {
  TraceLog log;
  log.Append({1.0, TraceKind::kIoCompleted, "disk", 0, 64.0, "", 0.25});
  log.Append({2.0, TraceKind::kNote, "disk", -1, 0, ""});
  EXPECT_DOUBLE_EQ(log.records()[0].duration, 0.25);
  EXPECT_DOUBLE_EQ(log.records()[1].duration, 0.0);  // instant by default
}

}  // namespace
}  // namespace memstream::sim
