#include "server/media_server.h"

#include <gtest/gtest.h>

namespace memstream::server {
namespace {

// The facade runs with uniform-rate disks here for the same reason the
// server tests do: the analytic sizing under validation assumes a single
// R_disk (conservative zoned sizing is exercised separately below).
device::DiskParameters UniformDisk() {
  device::DiskParameters p = device::FutureDisk2007();
  p.inner_rate = p.outer_rate;
  return p;
}

TEST(MediaServerTest, DirectModeJitterFree) {
  MediaServerConfig config;
  config.mode = ServerMode::kDirect;
  config.disk = UniformDisk();
  config.num_streams = 40;
  config.bit_rate = 1 * kMBps;
  config.sim_duration = 30;
  auto result = RunMediaServer(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().qos.underflow_events, 0);
  EXPECT_EQ(result.value().cycle_overruns, 0);
  EXPECT_GT(result.value().analytic_dram_total, 0.0);
  EXPECT_GT(result.value().ios_completed, 0);
}

TEST(MediaServerTest, BufferModeJitterFree) {
  MediaServerConfig config;
  config.mode = ServerMode::kMemsBuffer;
  config.disk = UniformDisk();
  config.k = 2;
  config.num_streams = 30;
  config.bit_rate = 1 * kMBps;
  config.sim_duration = 30;
  auto result = RunMediaServer(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().qos.underflow_events, 0);
  EXPECT_GT(result.value().mems_cycle, 0.0);
  EXPECT_LT(result.value().mems_cycle, result.value().disk_cycle);
  EXPECT_GT(result.value().mems_utilization, 0.0);
}

TEST(MediaServerTest, CacheModeJitterFree) {
  MediaServerConfig config;
  config.mode = ServerMode::kMemsCache;
  config.disk = UniformDisk();
  config.k = 2;
  config.cache_policy = model::CachePolicy::kReplicated;
  config.cached_fraction_of_streams = 0.6;
  config.num_streams = 30;
  config.bit_rate = 1 * kMBps;
  config.sim_duration = 30;
  auto result = RunMediaServer(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().qos.underflow_events, 0);
  EXPECT_GT(result.value().mems_utilization, 0.0);
  EXPECT_GT(result.value().disk_utilization, 0.0);
}

TEST(MediaServerTest, BufferModeNeedsLessDramThanDirect) {
  MediaServerConfig direct;
  direct.mode = ServerMode::kDirect;
  direct.disk = UniformDisk();
  direct.num_streams = 100;
  direct.bit_rate = 100 * kKBps;
  direct.sim_duration = 5;
  MediaServerConfig buffered = direct;
  buffered.mode = ServerMode::kMemsBuffer;
  buffered.k = 2;

  auto r_direct = RunMediaServer(direct);
  auto r_buffered = RunMediaServer(buffered);
  ASSERT_TRUE(r_direct.ok()) << r_direct.status().ToString();
  ASSERT_TRUE(r_buffered.ok()) << r_buffered.status().ToString();
  EXPECT_LT(r_buffered.value().analytic_dram_total,
            r_direct.value().analytic_dram_total);
  EXPECT_LT(r_buffered.value().sim_peak_dram,
            r_direct.value().sim_peak_dram);
}

TEST(MediaServerTest, ZonedDiskWithConservativeSizingStillJitterFree) {
  // The facade sizes with the inner-zone rate, so a real zoned disk must
  // also run without underflow.
  MediaServerConfig config;
  config.mode = ServerMode::kDirect;
  config.disk = device::FutureDisk2007();  // 170-300 MB/s zones
  config.num_streams = 30;
  config.bit_rate = 1 * kMBps;
  config.sim_duration = 20;
  auto result = RunMediaServer(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().qos.underflow_events, 0);
  EXPECT_EQ(result.value().cycle_overruns, 0);
}

TEST(MediaServerTest, TooManyStreamsReportsInfeasible) {
  MediaServerConfig config;
  config.mode = ServerMode::kDirect;
  config.disk = UniformDisk();
  config.num_streams = 1000;  // 1000 MB/s demand > 300 MB/s disk
  config.bit_rate = 1 * kMBps;
  auto result = RunMediaServer(config);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST(MediaServerTest, InvalidConfigRejected) {
  MediaServerConfig config;
  config.num_streams = 0;
  EXPECT_FALSE(RunMediaServer(config).ok());
  config.num_streams = 10;
  config.bit_rate = 0;
  EXPECT_FALSE(RunMediaServer(config).ok());
  config.bit_rate = 1 * kMBps;
  config.mode = ServerMode::kMemsBuffer;
  config.k = 0;
  EXPECT_FALSE(RunMediaServer(config).ok());
}

TEST(MediaServerTest, ModeNames) {
  EXPECT_STREQ(ServerModeName(ServerMode::kDirect), "direct");
  EXPECT_STREQ(ServerModeName(ServerMode::kMemsBuffer), "mems-buffer");
  EXPECT_STREQ(ServerModeName(ServerMode::kMemsCache), "mems-cache");
}

}  // namespace
}  // namespace memstream::server
