#include "common/status.h"

#include <gtest/gtest.h>

namespace memstream {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  Status s = Status::Infeasible("too many streams");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInfeasible);
  EXPECT_EQ(s.message(), "too many streams");
  EXPECT_EQ(s.ToString(), "Infeasible: too many streams");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (auto code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kInfeasible,
        StatusCode::kOutOfRange, StatusCode::kResourceExhausted,
        StatusCode::kFailedPrecondition, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::OutOfRange("beyond capacity"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "hello");
}

Status FailingOperation() { return Status::Internal("boom"); }

Status Propagates() {
  MEMSTREAM_RETURN_IF_ERROR(FailingOperation());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_EQ(Propagates().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace memstream
