// Minimal JSON parser for test assertions: enough of RFC 8259 to verify
// that exporter output is well-formed and to poke at its structure.
// Header-only; test-only (production code never parses JSON).

#ifndef MEMSTREAM_TESTS_JSON_TEST_UTIL_H_
#define MEMSTREAM_TESTS_JSON_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <string>
#include <vector>

namespace memstream::testutil {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  const JsonValue* Find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
  double Num(const std::string& key) const {
    const JsonValue* v = Find(key);
    return v != nullptr ? v->number : -1;
  }
  std::string Str(const std::string& key) const {
    const JsonValue* v = Find(key);
    return v != nullptr ? v->string : "";
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  /// Parses the whole document; ok() reports success and full consumption.
  JsonValue Parse() {
    JsonValue v = ParseValue();
    SkipSpace();
    ok_ = ok_ && pos_ == text_.size();
    return v;
  }
  bool ok() const { return ok_; }
  std::size_t error_pos() const { return pos_; }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ConsumeLiteral(const std::string& lit) {
    if (text_.compare(pos_, lit.size(), lit) == 0) {
      pos_ += lit.size();
      return true;
    }
    ok_ = false;
    return false;
  }

  JsonValue ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      ok_ = false;
      return {};
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't': {
        JsonValue v;
        v.type = JsonValue::Type::kBool;
        v.boolean = true;
        ConsumeLiteral("true");
        return v;
      }
      case 'f': {
        JsonValue v;
        v.type = JsonValue::Type::kBool;
        ConsumeLiteral("false");
        return v;
      }
      case 'n':
        ConsumeLiteral("null");
        return {};
      default:
        return ParseNumber();
    }
  }

  JsonValue ParseObject() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    if (!Consume('{')) {
      ok_ = false;
      return v;
    }
    SkipSpace();
    if (Consume('}')) return v;
    while (ok_) {
      SkipSpace();
      JsonValue key = ParseString();
      if (!ok_ || !Consume(':')) {
        ok_ = false;
        return v;
      }
      v.object.emplace(key.string, ParseValue());
      if (Consume(',')) continue;
      if (Consume('}')) return v;
      ok_ = false;
    }
    return v;
  }

  JsonValue ParseArray() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    if (!Consume('[')) {
      ok_ = false;
      return v;
    }
    SkipSpace();
    if (Consume(']')) return v;
    while (ok_) {
      v.array.push_back(ParseValue());
      if (Consume(',')) continue;
      if (Consume(']')) return v;
      ok_ = false;
    }
    return v;
  }

  JsonValue ParseString() {
    JsonValue v;
    v.type = JsonValue::Type::kString;
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      ok_ = false;
      return v;
    }
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_];
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_];
        switch (esc) {
          case '"': v.string.push_back('"'); break;
          case '\\': v.string.push_back('\\'); break;
          case '/': v.string.push_back('/'); break;
          case 'b': v.string.push_back('\b'); break;
          case 'f': v.string.push_back('\f'); break;
          case 'n': v.string.push_back('\n'); break;
          case 'r': v.string.push_back('\r'); break;
          case 't': v.string.push_back('\t'); break;
          case 'u':
            // Keep the escape opaque; structure checks don't need it.
            pos_ += 4;
            v.string.push_back('?');
            break;
          default:
            ok_ = false;
            return v;
        }
        ++pos_;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        ok_ = false;  // raw control characters are invalid inside strings
        return v;
      } else {
        v.string.push_back(c);
        ++pos_;
      }
    }
    if (pos_ >= text_.size()) {
      ok_ = false;
      return v;
    }
    ++pos_;  // closing quote
    return v;
  }

  JsonValue ParseNumber() {
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (start == pos_) {
      ok_ = false;
      return v;
    }
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
      ok_ = false;
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

inline JsonValue ParseOrFail(const std::string& json) {
  JsonParser parser(json);
  JsonValue doc = parser.Parse();
  EXPECT_TRUE(parser.ok())
      << "invalid JSON near offset " << parser.error_pos() << ":\n"
      << json.substr(
             parser.error_pos() > 40 ? parser.error_pos() - 40 : 0, 80);
  return doc;
}

}  // namespace memstream::testutil

#endif  // MEMSTREAM_TESTS_JSON_TEST_UTIL_H_
