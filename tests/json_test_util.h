// Test shim over obs/json_parser.h (the parser used to live here; it was
// promoted into src/obs so the report-aggregation CLI can share it).
// Keeps the memstream::testutil names the existing tests use and adds the
// gtest-flavored ParseOrFail helper.

#ifndef MEMSTREAM_TESTS_JSON_TEST_UTIL_H_
#define MEMSTREAM_TESTS_JSON_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>

#include "obs/json_parser.h"

namespace memstream::testutil {

using JsonValue = obs::JsonValue;
using JsonParser = obs::JsonParser;

inline JsonValue ParseOrFail(const std::string& json) {
  JsonParser parser(json);
  JsonValue doc = parser.Parse();
  EXPECT_TRUE(parser.ok())
      << "invalid JSON near offset " << parser.error_pos() << ":\n"
      << json.substr(
             parser.error_pos() > 40 ? parser.error_pos() - 40 : 0, 80);
  return doc;
}

}  // namespace memstream::testutil

#endif  // MEMSTREAM_TESTS_JSON_TEST_UTIL_H_
