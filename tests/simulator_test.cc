#include "sim/simulator.h"

#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.h"

namespace memstream::sim {
namespace {

TEST(EventQueueTest, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.Push(3.0, [&] { fired.push_back(3); });
  q.Push(1.0, [&] { fired.push_back(1); });
  q.Push(2.0, [&] { fired.push_back(2); });
  while (!q.empty()) {
    Seconds when;
    q.Pop(&when)();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoAmongSimultaneous) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    q.Push(1.0, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) {
    Seconds when;
    q.Pop(&when)();
  }
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, ClockAdvancesWithEvents) {
  Simulator sim;
  std::vector<Seconds> seen;
  ASSERT_TRUE(sim.Schedule(5.0, [&] { seen.push_back(sim.Now()); }).ok());
  ASSERT_TRUE(sim.Schedule(2.0, [&] { seen.push_back(sim.Now()); }).ok());
  auto n = sim.Run();
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 2);
  EXPECT_EQ(seen, (std::vector<Seconds>{2.0, 5.0}));
  EXPECT_DOUBLE_EQ(sim.Now(), 5.0);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&]() {
    ++count;
    if (count < 10) {
      ASSERT_TRUE(sim.Schedule(1.0, tick).ok());
    }
  };
  ASSERT_TRUE(sim.Schedule(1.0, tick).ok());
  ASSERT_TRUE(sim.Run().ok());
  EXPECT_EQ(count, 10);
  EXPECT_DOUBLE_EQ(sim.Now(), 10.0);
}

TEST(SimulatorTest, BoundedRunStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  ASSERT_TRUE(sim.Schedule(1.0, [&] { ++fired; }).ok());
  ASSERT_TRUE(sim.Schedule(100.0, [&] { ++fired; }).ok());
  auto n = sim.Run(10.0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 1);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.Now(), 10.0);
  // Resuming processes the rest.
  ASSERT_TRUE(sim.Run(200.0).ok());
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, StopEndsRunEarly) {
  Simulator sim;
  int fired = 0;
  ASSERT_TRUE(sim.Schedule(1.0, [&] {
                    ++fired;
                    sim.Stop();
                  })
                  .ok());
  ASSERT_TRUE(sim.Schedule(2.0, [&] { ++fired; }).ok());
  ASSERT_TRUE(sim.Run().ok());
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, NegativeDelayRejected) {
  Simulator sim;
  EXPECT_FALSE(sim.Schedule(-1.0, [] {}).ok());
}

TEST(SimulatorTest, PastAbsoluteTimeRejected) {
  Simulator sim;
  ASSERT_TRUE(sim.Schedule(5.0, [] {}).ok());
  ASSERT_TRUE(sim.Run().ok());
  EXPECT_FALSE(sim.ScheduleAt(1.0, [] {}).ok());
  EXPECT_TRUE(sim.ScheduleAt(5.0, [] {}).ok());
}

TEST(SimulatorTest, ResetClearsEverything) {
  Simulator sim;
  ASSERT_TRUE(sim.Schedule(1.0, [] {}).ok());
  ASSERT_TRUE(sim.Run().ok());
  sim.Reset();
  EXPECT_DOUBLE_EQ(sim.Now(), 0.0);
  EXPECT_EQ(sim.events_processed(), 0);
}

TEST(SimulatorTest, CountsEventsAcrossRuns) {
  Simulator sim;
  ASSERT_TRUE(sim.Schedule(1.0, [] {}).ok());
  ASSERT_TRUE(sim.Schedule(2.0, [] {}).ok());
  ASSERT_TRUE(sim.Run(1.5).ok());
  ASSERT_TRUE(sim.Run().ok());
  EXPECT_EQ(sim.events_processed(), 2);
}

}  // namespace
}  // namespace memstream::sim
