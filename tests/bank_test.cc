#include "device/bank.h"

#include <memory>

#include <gtest/gtest.h>

#include "device/device_catalog.h"
#include "device/mems_device.h"

namespace memstream::device {
namespace {

std::vector<std::unique_ptr<BlockDevice>> G3Bank(int k) {
  std::vector<std::unique_ptr<BlockDevice>> devices;
  for (int i = 0; i < k; ++i) {
    auto dev = MemsDevice::Create(MemsG3());
    EXPECT_TRUE(dev.ok());
    devices.push_back(
        std::make_unique<MemsDevice>(std::move(dev).value()));
  }
  return devices;
}

TEST(BankTest, RequiresAtLeastOneDevice) {
  EXPECT_FALSE(DeviceBank::Create({}, BankMode::kStriped).ok());
}

TEST(BankTest, RejectsHeterogeneousDevices) {
  auto devices = G3Bank(1);
  MemsParameters small = MemsG3();
  small.capacity = 1 * kGB;
  auto dev = MemsDevice::Create(small);
  ASSERT_TRUE(dev.ok());
  devices.push_back(std::make_unique<MemsDevice>(std::move(dev).value()));
  EXPECT_FALSE(DeviceBank::Create(std::move(devices), BankMode::kStriped)
                   .ok());
}

// Corollary 2: a round-robin buffer bank behaves as one device with k x
// throughput and k x lower latency.
TEST(BankTest, RoundRobinAggregates) {
  auto bank = DeviceBank::Create(G3Bank(4), BankMode::kRoundRobin);
  ASSERT_TRUE(bank.ok());
  EXPECT_DOUBLE_EQ(bank.value().AggregateTransferRate(), 4 * 320 * kMBps);
  EXPECT_DOUBLE_EQ(bank.value().EffectiveAverageLatency() * 4,
                   bank.value().device(0).AverageAccessLatency());
  EXPECT_DOUBLE_EQ(bank.value().EffectiveCapacity(), 40 * kGB);
}

// Corollary 3: a striped cache keeps single-device latency.
TEST(BankTest, StripedKeepsLatency) {
  auto bank = DeviceBank::Create(G3Bank(4), BankMode::kStriped);
  ASSERT_TRUE(bank.ok());
  EXPECT_DOUBLE_EQ(bank.value().AggregateTransferRate(), 4 * 320 * kMBps);
  EXPECT_DOUBLE_EQ(bank.value().EffectiveAverageLatency(),
                   bank.value().device(0).AverageAccessLatency());
  EXPECT_DOUBLE_EQ(bank.value().EffectiveCapacity(), 40 * kGB);
}

// Corollary 4: a replicated cache halves latency per device added but
// keeps single-device capacity.
TEST(BankTest, ReplicatedReducesLatencyKeepsCapacity) {
  auto bank = DeviceBank::Create(G3Bank(2), BankMode::kReplicated);
  ASSERT_TRUE(bank.ok());
  EXPECT_DOUBLE_EQ(bank.value().AggregateTransferRate(), 2 * 320 * kMBps);
  EXPECT_DOUBLE_EQ(bank.value().EffectiveAverageLatency() * 2,
                   bank.value().device(0).AverageAccessLatency());
  EXPECT_DOUBLE_EQ(bank.value().EffectiveCapacity(), 10 * kGB);
}

TEST(BankTest, RoundRobinCursorRotates) {
  auto bank = DeviceBank::Create(G3Bank(3), BankMode::kRoundRobin);
  ASSERT_TRUE(bank.ok());
  EXPECT_EQ(bank.value().NextRoundRobinDevice().value(), 0u);
  EXPECT_EQ(bank.value().NextRoundRobinDevice().value(), 1u);
  EXPECT_EQ(bank.value().NextRoundRobinDevice().value(), 2u);
  EXPECT_EQ(bank.value().NextRoundRobinDevice().value(), 0u);
}

TEST(BankTest, RoundRobinRoutingOnlyInRoundRobinMode) {
  auto bank = DeviceBank::Create(G3Bank(2), BankMode::kStriped);
  ASSERT_TRUE(bank.ok());
  EXPECT_EQ(bank.value().NextRoundRobinDevice().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(BankTest, StripedServiceSplitsAcrossDevices) {
  auto bank = DeviceBank::Create(G3Bank(4), BankMode::kStriped);
  ASSERT_TRUE(bank.ok());
  bank.value().Reset();
  auto t = bank.value().Service({0, 4 * kMB}, nullptr);
  ASSERT_TRUE(t.ok());
  // Each device transfers 1 MB at 320 MB/s from its current position.
  EXPECT_NEAR(t.value(), 1 * kMB / (320 * kMBps), 1e-9);
}

TEST(BankTest, ReplicatedServiceUsesOneDevice) {
  auto bank = DeviceBank::Create(G3Bank(2), BankMode::kReplicated);
  ASSERT_TRUE(bank.ok());
  bank.value().Reset();
  auto t = bank.value().Service({0, 2 * kMB}, nullptr);
  ASSERT_TRUE(t.ok());
  EXPECT_NEAR(t.value(), 2 * kMB / (320 * kMBps), 1e-9);
}

TEST(BankTest, ServiceBeyondCapacityRejected) {
  auto bank = DeviceBank::Create(G3Bank(2), BankMode::kReplicated);
  ASSERT_TRUE(bank.ok());
  // Replicated capacity is one device: 10 GB.
  EXPECT_FALSE(bank.value()
                   .Service({static_cast<std::int64_t>(15 * kGB), 1 * kMB},
                            nullptr)
                   .ok());
}

TEST(BankTest, ModeNames) {
  EXPECT_STREQ(BankModeName(BankMode::kRoundRobin), "round-robin");
  EXPECT_STREQ(BankModeName(BankMode::kStriped), "striped");
  EXPECT_STREQ(BankModeName(BankMode::kReplicated), "replicated");
}

}  // namespace
}  // namespace memstream::device
