#include "obs/report_merge.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/qos_auditor.h"
#include "obs/run_report.h"
#include "obs/timeline.h"

namespace memstream::obs {
namespace {

std::string BenchSweepsJson() {
  return R"([
    {"bench":"sim_validation","tasks":7,"threads":4,
     "wall_seconds":12.5,"events":100000,"events_per_sec":8000},
    {"bench":"sim_validation","tasks":7,"threads":4,
     "wall_seconds":11.0,"events":100000,"events_per_sec":9090.9},
    {"bench":"ablation_edf","tasks":3,"threads":4,
     "wall_seconds":4.25,"events":5000,"events_per_sec":1176.4}
  ])";
}

/// A run report built through the real RunReport/QosAuditor/Timeline
/// classes, so the test exercises the actual JSON round trip.
std::string MakeRunReportJson(const std::string& title, bool violate) {
  QosAuditorConfig qc;
  qc.disk_cycle = 1.0;
  QosAuditor auditor(qc);
  auditor.AddStream(3, 1 * kMBps, 2 * kMB, QosDomain::kDisk);
  auditor.Seal();
  auditor.RecordIo(0, 1 * kMB);
  auditor.EndDiskCycle(0, violate ? 1.5 : 0.5);

  TimelineRecorder timelines;
  TimelineSeries* s = timelines.AddSeries("stream.3.dram_bytes", "bytes");
  for (int i = 0; i < 8; ++i) s->Record(i * 0.5, 1000.0 * i);

  RunReport report;
  report.title = title;
  report.AddConfig("mode", "direct");
  report.AddAnalytic("dram_total_mb", 20.0);
  report.AddSimulated("dram_total_mb", 21.0);
  report.AddSimulated("qos_violations",
                      static_cast<double>(auditor.total_violations()));
  report.qos = &auditor;
  report.timelines = &timelines;
  report.trace_dropped_records = violate ? 17 : 0;
  return report.ToJson();
}

/// A run report carrying a "faults" block (a striped outage with one
/// shed-then-readmitted stream and one still-shed stream).
std::string MakeFaultyRunReportJson() {
  FaultsBlock faults;
  faults.events = 2;
  faults.repairs = 1;
  faults.replans = 2;
  faults.sheds = 2;
  faults.readmits = 1;
  faults.dropped_during_burst = 5;
  faults.total_shed_time = 14.5;
  faults.timeline.push_back(
      {10.0, "mems-device-fail", 1, 0.0, "cache down: shed 2"});
  faults.timeline.push_back({18.0, "mems-device-repair", 1, 0.0, "cleared"});
  faults.shed_streams.push_back({28, 10.0, 700, 18.5});
  faults.shed_streams.push_back({29, 10.0, 700, -1.0});

  RunReport report;
  report.title = "faulty run";
  report.AddConfig("mode", "mems_cache");
  report.AddSimulated("underflow_events", 0);
  report.faults = &faults;
  return report.ToJson();
}

TEST(ReportMergeTest, ClassifiesInputsByContent) {
  EXPECT_EQ(ClassifyReportInput(MakeRunReportJson("r", false)),
            ReportInputKind::kRunReport);
  EXPECT_EQ(ClassifyReportInput(BenchSweepsJson()),
            ReportInputKind::kBenchSweeps);
  EXPECT_EQ(ClassifyReportInput("[]"), ReportInputKind::kBenchSweeps);
  EXPECT_EQ(ClassifyReportInput("not json at all"),
            ReportInputKind::kUnknown);
  EXPECT_EQ(ClassifyReportInput("{\"foo\":1}"), ReportInputKind::kUnknown);
}

TEST(ReportMergeTest, MergesRunsAndBenchRecordsIntoOneBundle) {
  ReportBundle bundle;
  ASSERT_TRUE(
      AddReportInput("a.json", MakeRunReportJson("run A", true), &bundle)
          .ok());
  ASSERT_TRUE(
      AddReportInput("b.json", MakeRunReportJson("run B", false), &bundle)
          .ok());
  ASSERT_TRUE(
      AddReportInput("BENCH_sweeps.json", BenchSweepsJson(), &bundle).ok());

  ASSERT_EQ(bundle.runs.size(), 2u);
  EXPECT_EQ(bundle.runs[0].title, "run A");
  EXPECT_EQ(bundle.runs[0].schema_version, kRunReportSchemaVersion);
  EXPECT_TRUE(bundle.runs[0].has_qos);
  EXPECT_EQ(bundle.runs[0].total_violations, 1);
  EXPECT_EQ(bundle.runs[0].trace_dropped_records, 17);
  ASSERT_EQ(bundle.runs[0].violations.size(), 1u);
  EXPECT_EQ(bundle.runs[0].violations[0].invariant, "disk_cycle_overrun");
  EXPECT_EQ(bundle.runs[1].total_violations, 0);
  ASSERT_EQ(bundle.runs[0].timelines.size(), 1u);
  EXPECT_EQ(bundle.runs[0].timelines[0].name, "stream.3.dram_bytes");
  EXPECT_EQ(bundle.runs[0].timelines[0].points.size(), 8u);
  EXPECT_EQ(bundle.bench.size(), 3u);
  EXPECT_EQ(bundle.bench[2].bench, "ablation_edf");
  EXPECT_DOUBLE_EQ(bundle.bench[1].wall_seconds, 11.0);

  const auto violations = bundle.AllViolations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].first, "run A");

  // Analytic-vs-simulated delta for the shared key.
  const auto deltas = bundle.runs[0].Deltas();
  ASSERT_GE(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].key, "dram_total_mb");
  EXPECT_DOUBLE_EQ(deltas[0].delta, 1.0);
  EXPECT_NEAR(deltas[0].rel, 0.05, 1e-12);
}

TEST(ReportMergeTest, LoadsFaultsBlockAndRendersIt) {
  ReportBundle bundle;
  ASSERT_TRUE(
      AddReportInput("f.json", MakeFaultyRunReportJson(), &bundle).ok());
  ASSERT_EQ(bundle.runs.size(), 1u);
  const LoadedRunReport& run = bundle.runs[0];
  ASSERT_TRUE(run.has_faults);
  EXPECT_EQ(run.faults.events, 2);
  EXPECT_EQ(run.faults.repairs, 1);
  EXPECT_EQ(run.faults.replans, 2);
  EXPECT_EQ(run.faults.sheds, 2);
  EXPECT_EQ(run.faults.readmits, 1);
  EXPECT_EQ(run.faults.dropped_during_burst, 5);
  EXPECT_DOUBLE_EQ(run.faults.total_shed_time, 14.5);
  ASSERT_EQ(run.faults.timeline.size(), 2u);
  EXPECT_EQ(run.faults.timeline[0].kind, "mems-device-fail");
  EXPECT_EQ(run.faults.timeline[0].device, 1);
  EXPECT_EQ(run.faults.timeline[0].action, "cache down: shed 2");
  ASSERT_EQ(run.faults.shed_streams.size(), 2u);
  EXPECT_EQ(run.faults.shed_streams[0].stream_id, 28);
  EXPECT_DOUBLE_EQ(run.faults.shed_streams[0].readmit_time, 18.5);
  EXPECT_LT(run.faults.shed_streams[1].readmit_time, 0);

  const std::string md = RenderMarkdownReport(bundle, "faults");
  EXPECT_NE(md.find("### Faults"), std::string::npos);
  EXPECT_NE(md.find("mems-device-fail"), std::string::npos);
  EXPECT_NE(md.find("cache down: shed 2"), std::string::npos);
  EXPECT_NE(md.find("| 28 | 10 | 700 | 18.5 |"), std::string::npos);
  EXPECT_NE(md.find("never"), std::string::npos);
  EXPECT_NE(md.find("dropped 5 records during fault bursts"),
            std::string::npos);

  const std::string html = RenderHtmlDashboard(bundle, "faults");
  EXPECT_NE(html.find("<h3>Faults</h3>"), std::string::npos);
  EXPECT_NE(html.find("mems-device-fail"), std::string::npos);
  EXPECT_NE(html.find("2 stream(s) shed"), std::string::npos);
  EXPECT_NE(html.find("never"), std::string::npos);
  // Runs without a faults block render no faults section.
  ReportBundle clean;
  ASSERT_TRUE(
      AddReportInput("c.json", MakeRunReportJson("clean", false), &clean)
          .ok());
  EXPECT_FALSE(clean.runs[0].has_faults);
  EXPECT_EQ(RenderMarkdownReport(clean, "t").find("### Faults"),
            std::string::npos);
}

TEST(ReportMergeTest, MalformedInputIsAnErrorButKeepsTheBundle) {
  ReportBundle bundle;
  EXPECT_FALSE(AddReportInput("junk.txt", "not json", &bundle).ok());
  ASSERT_EQ(bundle.errors.size(), 1u);
  EXPECT_NE(bundle.errors[0].find("junk.txt"), std::string::npos);
  EXPECT_TRUE(
      AddReportInput("ok.json", MakeRunReportJson("ok", false), &bundle)
          .ok());
  EXPECT_EQ(bundle.runs.size(), 1u);
}

TEST(ReportMergeTest, MarkdownHasViolationAndBenchSections) {
  ReportBundle bundle;
  ASSERT_TRUE(
      AddReportInput("a.json", MakeRunReportJson("run A", true), &bundle)
          .ok());
  ASSERT_TRUE(
      AddReportInput("BENCH_sweeps.json", BenchSweepsJson(), &bundle).ok());

  const std::string md = RenderMarkdownReport(bundle, "nightly");
  EXPECT_NE(md.find("## Violations"), std::string::npos);
  EXPECT_NE(md.find("disk_cycle_overrun"), std::string::npos);
  EXPECT_NE(md.find("## Bench trajectory"), std::string::npos);
  EXPECT_NE(md.find("sim_validation"), std::string::npos);
}

TEST(ReportMergeTest, HtmlDashboardIsStandaloneWithAllSections) {
  ReportBundle bundle;
  ASSERT_TRUE(
      AddReportInput("a.json", MakeRunReportJson("run A", true), &bundle)
          .ok());
  ASSERT_TRUE(
      AddReportInput("b.json", MakeRunReportJson("run B", false), &bundle)
          .ok());
  ASSERT_TRUE(
      AddReportInput("BENCH_sweeps.json", BenchSweepsJson(), &bundle).ok());

  const std::string html = RenderHtmlDashboard(bundle, "nightly <&>");
  EXPECT_NE(html.find("<h2>Violations</h2>"), std::string::npos);
  EXPECT_NE(html.find("disk_cycle_overrun"), std::string::npos);
  EXPECT_NE(html.find("<h2>Bench trajectory</h2>"), std::string::npos);
  EXPECT_NE(html.find("run B"), std::string::npos);
  // Title is escaped.
  EXPECT_NE(html.find("nightly &lt;&amp;&gt;"), std::string::npos);
  EXPECT_EQ(html.find("nightly <&>"), std::string::npos);
  // Standalone: no scripts, stylesheets, images, or remote fetches.
  EXPECT_EQ(html.find("<script"), std::string::npos);
  EXPECT_EQ(html.find("<link"), std::string::npos);
  EXPECT_EQ(html.find("<img"), std::string::npos);
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
}

// -------------------------------------------------------------------
// End-to-end through the installed CLI binary.
// -------------------------------------------------------------------

std::string WriteTempFile(const std::string& name,
                          const std::string& content) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary);
  EXPECT_TRUE(out.good());
  out << content;
  out.close();
  return path;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(MemstreamReportCliTest, MergesReportsIntoOneHtmlDashboard) {
  const std::string a =
      WriteTempFile("cli_a.report.json", MakeRunReportJson("run A", true));
  const std::string b =
      WriteTempFile("cli_b.report.json", MakeRunReportJson("run B", false));
  const std::string sweeps =
      WriteTempFile("cli_sweeps.json", BenchSweepsJson());
  const std::string html = ::testing::TempDir() + "cli_dashboard.html";
  const std::string md = ::testing::TempDir() + "cli_report.md";

  const std::string cmd = std::string(MEMSTREAM_REPORT_BIN) + " " + a +
                          " " + b + " " + sweeps + " -o " + html + " --md " +
                          md + " --title nightly";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

  const std::string dashboard = Slurp(html);
  ASSERT_FALSE(dashboard.empty());
  EXPECT_NE(dashboard.find("<h2>Violations</h2>"), std::string::npos);
  EXPECT_NE(dashboard.find("disk_cycle_overrun"), std::string::npos);
  EXPECT_NE(dashboard.find("<h2>Bench trajectory</h2>"), std::string::npos);
  EXPECT_NE(dashboard.find("run A"), std::string::npos);
  EXPECT_NE(dashboard.find("run B"), std::string::npos);
  EXPECT_EQ(dashboard.find("<script"), std::string::npos);

  const std::string markdown = Slurp(md);
  EXPECT_NE(markdown.find("## Violations"), std::string::npos);
  EXPECT_NE(markdown.find("## Bench trajectory"), std::string::npos);
}

TEST(MemstreamReportCliTest, FailsWhenNoInputLoads) {
  const std::string missing = ::testing::TempDir() + "cli_does_not_exist";
  const std::string cmd =
      std::string(MEMSTREAM_REPORT_BIN) + " " + missing + " 2>/dev/null";
  EXPECT_NE(std::system(cmd.c_str()), 0);
}

}  // namespace
}  // namespace memstream::obs
