#include "obs/report_merge.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/qos_auditor.h"
#include "obs/run_report.h"
#include "obs/timeline.h"

namespace memstream::obs {
namespace {

std::string BenchSweepsJson() {
  return R"([
    {"bench":"sim_validation","tasks":7,"threads":4,
     "wall_seconds":12.5,"events":100000,"events_per_sec":8000},
    {"bench":"sim_validation","tasks":7,"threads":4,
     "wall_seconds":11.0,"events":100000,"events_per_sec":9090.9},
    {"bench":"ablation_edf","tasks":3,"threads":4,
     "wall_seconds":4.25,"events":5000,"events_per_sec":1176.4}
  ])";
}

/// A run report built through the real RunReport/QosAuditor/Timeline
/// classes, so the test exercises the actual JSON round trip.
std::string MakeRunReportJson(const std::string& title, bool violate) {
  QosAuditorConfig qc;
  qc.disk_cycle = 1.0;
  QosAuditor auditor(qc);
  auditor.AddStream(3, 1 * kMBps, 2 * kMB, QosDomain::kDisk);
  auditor.Seal();
  auditor.RecordIo(0, 1 * kMB);
  auditor.EndDiskCycle(0, violate ? 1.5 : 0.5);

  TimelineRecorder timelines;
  TimelineSeries* s = timelines.AddSeries("stream.3.dram_bytes", "bytes");
  for (int i = 0; i < 8; ++i) s->Record(i * 0.5, 1000.0 * i);

  RunReport report;
  report.title = title;
  report.AddConfig("mode", "direct");
  report.AddAnalytic("dram_total_mb", 20.0);
  report.AddSimulated("dram_total_mb", 21.0);
  report.AddSimulated("qos_violations",
                      static_cast<double>(auditor.total_violations()));
  report.qos = &auditor;
  report.timelines = &timelines;
  report.trace_dropped_records = violate ? 17 : 0;
  return report.ToJson();
}

TEST(ReportMergeTest, ClassifiesInputsByContent) {
  EXPECT_EQ(ClassifyReportInput(MakeRunReportJson("r", false)),
            ReportInputKind::kRunReport);
  EXPECT_EQ(ClassifyReportInput(BenchSweepsJson()),
            ReportInputKind::kBenchSweeps);
  EXPECT_EQ(ClassifyReportInput("[]"), ReportInputKind::kBenchSweeps);
  EXPECT_EQ(ClassifyReportInput("not json at all"),
            ReportInputKind::kUnknown);
  EXPECT_EQ(ClassifyReportInput("{\"foo\":1}"), ReportInputKind::kUnknown);
}

TEST(ReportMergeTest, MergesRunsAndBenchRecordsIntoOneBundle) {
  ReportBundle bundle;
  ASSERT_TRUE(
      AddReportInput("a.json", MakeRunReportJson("run A", true), &bundle)
          .ok());
  ASSERT_TRUE(
      AddReportInput("b.json", MakeRunReportJson("run B", false), &bundle)
          .ok());
  ASSERT_TRUE(
      AddReportInput("BENCH_sweeps.json", BenchSweepsJson(), &bundle).ok());

  ASSERT_EQ(bundle.runs.size(), 2u);
  EXPECT_EQ(bundle.runs[0].title, "run A");
  EXPECT_EQ(bundle.runs[0].schema_version, kRunReportSchemaVersion);
  EXPECT_TRUE(bundle.runs[0].has_qos);
  EXPECT_EQ(bundle.runs[0].total_violations, 1);
  EXPECT_EQ(bundle.runs[0].trace_dropped_records, 17);
  ASSERT_EQ(bundle.runs[0].violations.size(), 1u);
  EXPECT_EQ(bundle.runs[0].violations[0].invariant, "disk_cycle_overrun");
  EXPECT_EQ(bundle.runs[1].total_violations, 0);
  ASSERT_EQ(bundle.runs[0].timelines.size(), 1u);
  EXPECT_EQ(bundle.runs[0].timelines[0].name, "stream.3.dram_bytes");
  EXPECT_EQ(bundle.runs[0].timelines[0].points.size(), 8u);
  EXPECT_EQ(bundle.bench.size(), 3u);
  EXPECT_EQ(bundle.bench[2].bench, "ablation_edf");
  EXPECT_DOUBLE_EQ(bundle.bench[1].wall_seconds, 11.0);

  const auto violations = bundle.AllViolations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].first, "run A");

  // Analytic-vs-simulated delta for the shared key.
  const auto deltas = bundle.runs[0].Deltas();
  ASSERT_GE(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].key, "dram_total_mb");
  EXPECT_DOUBLE_EQ(deltas[0].delta, 1.0);
  EXPECT_NEAR(deltas[0].rel, 0.05, 1e-12);
}

TEST(ReportMergeTest, MalformedInputIsAnErrorButKeepsTheBundle) {
  ReportBundle bundle;
  EXPECT_FALSE(AddReportInput("junk.txt", "not json", &bundle).ok());
  ASSERT_EQ(bundle.errors.size(), 1u);
  EXPECT_NE(bundle.errors[0].find("junk.txt"), std::string::npos);
  EXPECT_TRUE(
      AddReportInput("ok.json", MakeRunReportJson("ok", false), &bundle)
          .ok());
  EXPECT_EQ(bundle.runs.size(), 1u);
}

TEST(ReportMergeTest, MarkdownHasViolationAndBenchSections) {
  ReportBundle bundle;
  ASSERT_TRUE(
      AddReportInput("a.json", MakeRunReportJson("run A", true), &bundle)
          .ok());
  ASSERT_TRUE(
      AddReportInput("BENCH_sweeps.json", BenchSweepsJson(), &bundle).ok());

  const std::string md = RenderMarkdownReport(bundle, "nightly");
  EXPECT_NE(md.find("## Violations"), std::string::npos);
  EXPECT_NE(md.find("disk_cycle_overrun"), std::string::npos);
  EXPECT_NE(md.find("## Bench trajectory"), std::string::npos);
  EXPECT_NE(md.find("sim_validation"), std::string::npos);
}

TEST(ReportMergeTest, HtmlDashboardIsStandaloneWithAllSections) {
  ReportBundle bundle;
  ASSERT_TRUE(
      AddReportInput("a.json", MakeRunReportJson("run A", true), &bundle)
          .ok());
  ASSERT_TRUE(
      AddReportInput("b.json", MakeRunReportJson("run B", false), &bundle)
          .ok());
  ASSERT_TRUE(
      AddReportInput("BENCH_sweeps.json", BenchSweepsJson(), &bundle).ok());

  const std::string html = RenderHtmlDashboard(bundle, "nightly <&>");
  EXPECT_NE(html.find("<h2>Violations</h2>"), std::string::npos);
  EXPECT_NE(html.find("disk_cycle_overrun"), std::string::npos);
  EXPECT_NE(html.find("<h2>Bench trajectory</h2>"), std::string::npos);
  EXPECT_NE(html.find("run B"), std::string::npos);
  // Title is escaped.
  EXPECT_NE(html.find("nightly &lt;&amp;&gt;"), std::string::npos);
  EXPECT_EQ(html.find("nightly <&>"), std::string::npos);
  // Standalone: no scripts, stylesheets, images, or remote fetches.
  EXPECT_EQ(html.find("<script"), std::string::npos);
  EXPECT_EQ(html.find("<link"), std::string::npos);
  EXPECT_EQ(html.find("<img"), std::string::npos);
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
}

// -------------------------------------------------------------------
// End-to-end through the installed CLI binary.
// -------------------------------------------------------------------

std::string WriteTempFile(const std::string& name,
                          const std::string& content) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary);
  EXPECT_TRUE(out.good());
  out << content;
  out.close();
  return path;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(MemstreamReportCliTest, MergesReportsIntoOneHtmlDashboard) {
  const std::string a =
      WriteTempFile("cli_a.report.json", MakeRunReportJson("run A", true));
  const std::string b =
      WriteTempFile("cli_b.report.json", MakeRunReportJson("run B", false));
  const std::string sweeps =
      WriteTempFile("cli_sweeps.json", BenchSweepsJson());
  const std::string html = ::testing::TempDir() + "cli_dashboard.html";
  const std::string md = ::testing::TempDir() + "cli_report.md";

  const std::string cmd = std::string(MEMSTREAM_REPORT_BIN) + " " + a +
                          " " + b + " " + sweeps + " -o " + html + " --md " +
                          md + " --title nightly";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

  const std::string dashboard = Slurp(html);
  ASSERT_FALSE(dashboard.empty());
  EXPECT_NE(dashboard.find("<h2>Violations</h2>"), std::string::npos);
  EXPECT_NE(dashboard.find("disk_cycle_overrun"), std::string::npos);
  EXPECT_NE(dashboard.find("<h2>Bench trajectory</h2>"), std::string::npos);
  EXPECT_NE(dashboard.find("run A"), std::string::npos);
  EXPECT_NE(dashboard.find("run B"), std::string::npos);
  EXPECT_EQ(dashboard.find("<script"), std::string::npos);

  const std::string markdown = Slurp(md);
  EXPECT_NE(markdown.find("## Violations"), std::string::npos);
  EXPECT_NE(markdown.find("## Bench trajectory"), std::string::npos);
}

TEST(MemstreamReportCliTest, FailsWhenNoInputLoads) {
  const std::string missing = ::testing::TempDir() + "cli_does_not_exist";
  const std::string cmd =
      std::string(MEMSTREAM_REPORT_BIN) + " " + missing + " 2>/dev/null";
  EXPECT_NE(std::system(cmd.c_str()), 0);
}

}  // namespace
}  // namespace memstream::obs
