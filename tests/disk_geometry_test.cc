#include "device/disk_geometry.h"

#include <gtest/gtest.h>

namespace memstream::device {
namespace {

DiskGeometry Simple() {
  auto geo = DiskGeometry::Create(1000 * kGB, 100000, 16, 300 * kMBps,
                                  170 * kMBps);
  EXPECT_TRUE(geo.ok());
  return std::move(geo).value();
}

TEST(DiskGeometryTest, ZonesCoverAllCylinders) {
  DiskGeometry geo = Simple();
  ASSERT_EQ(geo.zones().size(), 16u);
  EXPECT_EQ(geo.zones().front().first_cylinder, 0);
  EXPECT_EQ(geo.zones().back().last_cylinder, 99999);
  for (std::size_t z = 1; z < geo.zones().size(); ++z) {
    EXPECT_EQ(geo.zones()[z].first_cylinder,
              geo.zones()[z - 1].last_cylinder + 1);
  }
}

TEST(DiskGeometryTest, CapacitySumsExactly) {
  DiskGeometry geo = Simple();
  Bytes total = 0;
  for (const auto& z : geo.zones()) total += z.capacity;
  EXPECT_DOUBLE_EQ(total, 1000 * kGB);
}

TEST(DiskGeometryTest, OuterZoneIsFastestAndLargest) {
  DiskGeometry geo = Simple();
  const auto& outer = geo.zones().front();
  const auto& inner = geo.zones().back();
  EXPECT_DOUBLE_EQ(outer.transfer_rate, 300 * kMBps);
  EXPECT_DOUBLE_EQ(inner.transfer_rate, 170 * kMBps);
  EXPECT_GT(outer.capacity, inner.capacity);
}

TEST(DiskGeometryTest, RateAtOffsetMatchesZone) {
  DiskGeometry geo = Simple();
  auto rate0 = geo.RateAt(0);
  ASSERT_TRUE(rate0.ok());
  EXPECT_DOUBLE_EQ(rate0.value(), 300 * kMBps);
  auto rate_end = geo.RateAt(1000 * kGB - 1);
  ASSERT_TRUE(rate_end.ok());
  EXPECT_DOUBLE_EQ(rate_end.value(), 170 * kMBps);
}

TEST(DiskGeometryTest, CylinderMonotoneInOffset) {
  DiskGeometry geo = Simple();
  std::int64_t prev = -1;
  for (Bytes off = 0; off < 1000 * kGB; off += 37 * kGB) {
    auto cyl = geo.CylinderAt(off);
    ASSERT_TRUE(cyl.ok());
    EXPECT_GE(cyl.value(), prev);
    EXPECT_LT(cyl.value(), 100000);
    prev = cyl.value();
  }
}

TEST(DiskGeometryTest, OutOfRangeOffsetRejected) {
  DiskGeometry geo = Simple();
  EXPECT_FALSE(geo.ZoneAt(-1).ok());
  EXPECT_FALSE(geo.ZoneAt(1000 * kGB).ok());
  EXPECT_EQ(geo.ZoneAt(1000 * kGB).status().code(), StatusCode::kOutOfRange);
}

TEST(DiskGeometryTest, SingleZoneUniform) {
  auto geo = DiskGeometry::Create(10 * kGB, 100, 1, 50 * kMBps, 50 * kMBps);
  ASSERT_TRUE(geo.ok());
  EXPECT_EQ(geo.value().zones().size(), 1u);
  EXPECT_DOUBLE_EQ(geo.value().zones()[0].capacity, 10 * kGB);
}

TEST(DiskGeometryTest, InvalidArgumentsRejected) {
  EXPECT_FALSE(DiskGeometry::Create(0, 100, 4, 2, 1).ok());
  EXPECT_FALSE(DiskGeometry::Create(1 * kGB, 2, 4, 2, 1).ok());
  EXPECT_FALSE(DiskGeometry::Create(1 * kGB, 100, 4, 1, 2).ok());
  EXPECT_FALSE(DiskGeometry::Create(1 * kGB, 100, 4, 2, 0).ok());
}

}  // namespace
}  // namespace memstream::device
