// Sharded farm executor: the determinism contract (byte-identical merged
// report, journal event order and slo.* gauges at any thread count), the
// failover/readmit semantics of the two placements, and the farm block.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "device/device_catalog.h"
#include "farm/sharded_farm.h"
#include "fault/fault_plan.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/slo.h"
#include "obs/stream_journal.h"

namespace memstream::farm {
namespace {

fault::FaultPlan NodeOutage(std::int64_t shard, Seconds fail, Seconds repair) {
  std::vector<fault::FaultEvent> events;
  fault::FaultEvent down;
  down.time = fail;
  down.kind = fault::FaultKind::kMemsDeviceFail;
  down.device = shard;
  events.push_back(down);
  fault::FaultEvent up;
  up.time = repair;
  up.kind = fault::FaultKind::kMemsDeviceRepair;
  up.device = shard;
  events.push_back(up);
  return fault::FaultPlan::FromScript(events);
}

ShardedFarmConfig SmallFarm() {
  ShardedFarmConfig config;
  config.num_shards = 4;
  config.num_titles = 200;
  config.zipf_exponent = 0.8;
  config.offered_streams = 400;
  config.bit_rate = 100 * kKBps;
  config.node_disk = device::FutureDisk2007();
  config.node_disk.inner_rate = config.node_disk.outer_rate;
  config.dram_budget_per_shard = 256 * kMB;
  config.duration = 6;
  config.seed = 42;
  return config;
}

TEST(ShardedFarmTest, RejectsBadConfig) {
  ShardedFarmConfig config = SmallFarm();
  config.num_shards = 0;
  EXPECT_FALSE(RunShardedFarm(config).ok());
  config = SmallFarm();
  config.offered_streams = -1;
  EXPECT_FALSE(RunShardedFarm(config).ok());
  config = SmallFarm();
  config.duration = 0;
  EXPECT_FALSE(RunShardedFarm(config).ok());
}

TEST(ShardedFarmTest, AdmitsAndServesCleanlyWithoutFaults) {
  ShardedFarmConfig config = SmallFarm();
  auto result = RunShardedFarm(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const FarmRunReport& r = result.value();
  EXPECT_EQ(r.offered, 400);
  EXPECT_EQ(r.admitted + r.rejected, r.offered);
  EXPECT_GT(r.admitted, 0);
  EXPECT_EQ(r.shed_actions, 0);
  EXPECT_EQ(r.failovers, 0);
  EXPECT_EQ(r.underflow_events, 0);
  EXPECT_EQ(r.qos_violations, 0);
  EXPECT_DOUBLE_EQ(r.availability, 1.0);
  EXPECT_GT(r.ios_completed, 0);
  EXPECT_GT(r.peak_dram_per_shard, 0);
  EXPECT_LE(r.peak_dram_per_shard, config.dram_budget_per_shard);
  ASSERT_EQ(static_cast<std::int64_t>(r.per_shard.size()), r.shards);
  std::int64_t streams = 0;
  for (const FarmShardReport& s : r.per_shard) streams += s.streams;
  EXPECT_EQ(streams, r.admitted);
}

// The satellite contract: a seeded farm run produces a byte-identical
// merged report — farm block, journal event order, slo.* gauges and
// metrics included — at 1 and at 8 sweep threads.
TEST(ShardedFarmTest, MergedReportIsByteIdenticalAcrossThreadCounts) {
  auto run = [](int threads, std::string* json) {
    ShardedFarmConfig config = SmallFarm();
    config.policy = PlacementPolicy::kPopularityAware;
    config.replicas = 2;
    config.replication_budget = 0.10;
    config.faults = NodeOutage(/*shard=*/0, /*fail=*/2.4, /*repair=*/4.5);
    config.threads = threads;
    obs::StreamJournal journal;
    obs::SloMonitor slo;
    obs::MetricsRegistry metrics;
    config.journal = &journal;
    config.slo = &slo;
    config.metrics = &metrics;

    auto result = RunShardedFarm(config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const FarmRunReport& r = result.value();
    EXPECT_EQ(r.sweep.threads, threads);
    EXPECT_GT(r.failovers, 0);  // the outage must actually exercise merge

    obs::RunReport report;
    report.title = "sharded farm determinism";
    const obs::FarmBlock block = BuildFarmBlock(r);
    report.farm = &block;
    report.streams = &journal;
    report.slo = &slo;
    report.metrics = &metrics;
    *json = report.ToJson();
  };
  std::string at_one;
  std::string at_eight;
  run(1, &at_one);
  run(8, &at_eight);
  ASSERT_FALSE(at_one.empty());
  EXPECT_EQ(at_one, at_eight)
      << "merged farm report must not depend on the thread count";
}

TEST(ShardedFarmTest, JournalRecordsShedAndReadmitInOrder) {
  ShardedFarmConfig config = SmallFarm();
  config.faults = NodeOutage(/*shard=*/0, /*fail=*/2.4, /*repair=*/4.5);
  obs::StreamJournal journal;
  config.journal = &journal;
  auto result = RunShardedFarm(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(result.value().shed_actions, 0);

  // Every journaled stream's events must be time-ordered, and at least
  // one stream must show the shed -> readmitted arc of the outage.
  bool saw_shed_then_readmit = false;
  for (std::size_t slot = 0; slot < journal.size(); ++slot) {
    const obs::StreamJournalEntry& e = journal.entry(slot);
    for (std::size_t i = 1; i < e.events.size(); ++i) {
      EXPECT_LE(e.events[i - 1].t, e.events[i].t)
          << "stream " << e.stream_id << " event " << i;
    }
    bool shed = false;
    for (const obs::StreamEvent& ev : e.events) {
      if (ev.kind == obs::StreamEventKind::kShed) shed = true;
      if (shed && ev.kind == obs::StreamEventKind::kReadmitted) {
        saw_shed_then_readmit = true;
      }
    }
  }
  EXPECT_TRUE(saw_shed_then_readmit);
}

TEST(ShardedFarmTest, OnlyReplicatedHeadFailsOver) {
  // Same outage, same offered load: consistent hashing (one copy per
  // title) can only shed and wait for the repair; popularity-aware
  // re-admits head streams on surviving replicas.
  ShardedFarmConfig hash = SmallFarm();
  hash.policy = PlacementPolicy::kConsistentHash;
  hash.replicas = 1;
  hash.faults = NodeOutage(/*shard=*/0, /*fail=*/2.4, /*repair=*/4.5);
  auto hash_result = RunShardedFarm(hash);
  ASSERT_TRUE(hash_result.ok()) << hash_result.status().ToString();
  const FarmRunReport& h = hash_result.value();
  EXPECT_GT(h.shed_actions, 0);
  EXPECT_EQ(h.failovers, 0);
  EXPECT_GT(h.readmits, 0);  // the repair brings shed streams back
  EXPECT_LT(h.availability, 1.0);

  ShardedFarmConfig pop = SmallFarm();
  pop.policy = PlacementPolicy::kPopularityAware;
  pop.replicas = 2;
  pop.replication_budget = 0.10;
  pop.faults = NodeOutage(/*shard=*/0, /*fail=*/2.4, /*repair=*/4.5);
  auto pop_result = RunShardedFarm(pop);
  ASSERT_TRUE(pop_result.ok()) << pop_result.status().ToString();
  const FarmRunReport& p = pop_result.value();
  EXPECT_GT(p.failovers, 0);
  EXPECT_GE(p.readmits, p.failovers);
  EXPECT_GT(p.availability, h.availability)
      << "replicating the Zipf head must buy availability";
}

TEST(ShardedFarmTest, FarmBlockMirrorsReport) {
  ShardedFarmConfig config = SmallFarm();
  config.policy = PlacementPolicy::kPopularityAware;
  config.replicas = 2;
  config.faults = NodeOutage(/*shard=*/1, /*fail=*/2.4, /*repair=*/4.5);
  auto result = RunShardedFarm(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const FarmRunReport& r = result.value();
  const obs::FarmBlock block = BuildFarmBlock(r);
  EXPECT_EQ(block.policy, r.policy);
  EXPECT_EQ(block.shards, r.shards);
  EXPECT_EQ(block.titles, r.titles);
  EXPECT_EQ(block.total_copies, r.total_copies);
  EXPECT_EQ(block.offered, r.offered);
  EXPECT_EQ(block.admitted, r.admitted);
  EXPECT_EQ(block.rejected, r.rejected);
  EXPECT_EQ(block.failovers, r.failovers);
  EXPECT_EQ(block.shed, r.shed_actions);
  EXPECT_EQ(block.readmits, r.readmits);
  EXPECT_DOUBLE_EQ(block.availability, r.availability);
  EXPECT_EQ(block.peak_dram_per_shard, r.peak_dram_per_shard);
  ASSERT_EQ(block.per_shard.size(), r.per_shard.size());
  for (std::size_t i = 0; i < block.per_shard.size(); ++i) {
    EXPECT_EQ(block.per_shard[i].shard, r.per_shard[i].shard);
    EXPECT_EQ(block.per_shard[i].streams, r.per_shard[i].streams);
    EXPECT_EQ(block.per_shard[i].peak_dram_bytes,
              r.per_shard[i].peak_dram_demand);
  }
}

TEST(ShardedFarmTest, SloGaugesPublishAvailability) {
  ShardedFarmConfig config = SmallFarm();
  config.faults = NodeOutage(/*shard=*/0, /*fail=*/2.4, /*repair=*/4.5);
  obs::SloMonitor slo;
  obs::MetricsRegistry metrics;
  config.slo = &slo;
  config.metrics = &metrics;
  auto result = RunShardedFarm(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto snapshot = slo.Snapshot();
  EXPECT_FALSE(snapshot.empty());
  bool saw_gauge = false;
  for (const auto& m : metrics.Snapshot()) {
    if (m.name.rfind("slo.", 0) == 0) saw_gauge = true;
  }
  EXPECT_TRUE(saw_gauge) << "farm must publish slo.* gauges";
}

}  // namespace
}  // namespace memstream::farm
