#include "model/mems_buffer.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "device/device_catalog.h"
#include "model/profiles.h"
#include "model/timecycle.h"

namespace memstream::model {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

DeviceProfile G3Profile() {
  auto dev = device::MemsDevice::Create(device::MemsG3());
  EXPECT_TRUE(dev.ok());
  return MemsProfileMaxLatency(dev.value());
}

DeviceProfile DiskAt(std::int64_t n) {
  auto disk = device::DiskDrive::Create(device::FutureDisk2007());
  EXPECT_TRUE(disk.ok());
  return DiskProfile(disk.value(), n);
}

MemsBufferParams PaperParams(std::int64_t n, std::int64_t k = 2) {
  MemsBufferParams p;
  p.k = k;
  p.disk = DiskAt(n);
  p.mems = G3Profile();
  return p;
}

TEST(Theorem2Test, CFormulaMatchesEq5) {
  const std::int64_t n = 100, k = 2;
  const BytesPerSecond b = 1 * kMBps;
  auto params = PaperParams(n, k);
  auto range = FeasibleTdiskRange(n, b, params);
  ASSERT_TRUE(range.ok()) << range.status().ToString();
  const double expected_c =
      n * params.mems.latency * params.mems.rate /
      (k * params.mems.rate - 2.0 * (n + k - 1) * b);
  EXPECT_NEAR(range.value().c, expected_c, 1e-12);
}

TEST(Theorem2Test, SizingMatchesEq5ClosedForm) {
  const std::int64_t n = 100, k = 2;
  const BytesPerSecond b = 1 * kMBps;
  auto params = PaperParams(n, k);
  const Seconds t_disk = 20.0;
  auto sizing = SolveMemsBuffer(n, b, params, t_disk);
  ASSERT_TRUE(sizing.ok()) << sizing.status().ToString();
  const double c = sizing.value().c;
  const double expected =
      b * c * (1.0 + (2.0 * k - 2.0) / n) * t_disk / (t_disk - c);
  EXPECT_NEAR(sizing.value().s_mems_dram, expected, 1e-6);
}

TEST(Theorem2Test, TmemsIsFixedPointOfMemsCycle) {
  // T_mems must satisfy T_mems = (N + M)/k * L + 2 N B T_mems / (k R)
  // with M = N * T_mems / T_disk (the derivation in DESIGN.md), modulo
  // the paper's N+k-1 imbalance slack. Check with k = 1, where the slack
  // vanishes.
  const std::int64_t n = 50;
  const BytesPerSecond b = 100 * kKBps;
  auto params = PaperParams(n, 1);
  const Seconds t_disk = 10.0;
  auto sizing = SolveMemsBuffer(n, b, params, t_disk);
  ASSERT_TRUE(sizing.ok());
  const double tm = sizing.value().t_mems;
  const double m = n * tm / t_disk;
  const double rhs = (n + m) * params.mems.latency +
                     2.0 * n * b * tm / params.mems.rate;
  EXPECT_NEAR(tm, rhs, 1e-9 * tm);
}

TEST(Theorem2Test, Condition6LowerBoundEnforced) {
  const std::int64_t n = 200;
  const BytesPerSecond b = 1 * kMBps;
  auto params = PaperParams(n);
  auto range = FeasibleTdiskRange(n, b, params);
  ASSERT_TRUE(range.ok());
  // Below the bound: rejected.
  EXPECT_FALSE(
      SolveMemsBuffer(n, b, params, range.value().lower * 0.99).ok());
  EXPECT_TRUE(
      SolveMemsBuffer(n, b, params, range.value().lower * 1.01).ok());
  // Theorem 1's minimum cycle on the disk is within the bound.
  auto t1 = IoCycleLength(n, b, params.disk);
  ASSERT_TRUE(t1.ok());
  EXPECT_GE(range.value().lower, t1.value() * (1 - 1e-9));
}

TEST(Theorem2Test, Condition7StorageBoundEnforced) {
  const std::int64_t n = 100;
  const BytesPerSecond b = 1 * kMBps;
  auto params = PaperParams(n);  // 2 x 10 GB of MEMS
  auto range = FeasibleTdiskRange(n, b, params);
  ASSERT_TRUE(range.ok());
  // Upper bound: 2 N T B <= k Size -> T <= 20 GB / (2*100*1MB) = 100 s.
  EXPECT_NEAR(range.value().upper, 100.0, 1e-9);
  EXPECT_FALSE(SolveMemsBuffer(n, b, params, 101.0).ok());
  auto at_bound = SolveMemsBuffer(n, b, params, 100.0);
  ASSERT_TRUE(at_bound.ok());
  EXPECT_NEAR(at_bound.value().mems_used, 20 * kGB, 1);
}

TEST(Theorem2Test, Condition8SnappingProducesIntegerM) {
  const std::int64_t n = 45;
  const BytesPerSecond b = 1 * kMBps;
  auto params = PaperParams(n, 3);
  auto sizing = SolveMemsBuffer(n, b, params, 5.0);
  ASSERT_TRUE(sizing.ok());
  const auto& s = sizing.value();
  EXPECT_GE(s.m, 1);
  EXPECT_LT(s.m, n);
  EXPECT_NEAR(s.t_mems_snapped, static_cast<double>(s.m) * 5.0 / n, 1e-12);
  EXPECT_GE(s.t_mems_snapped, s.t_mems - 1e-12);
  EXPECT_GE(s.s_mems_dram_schedulable, s.s_mems_dram - 1e-9);
}

TEST(Theorem2Test, DramFarBelowDirectStreaming) {
  // The headline claim (Fig. 6): the MEMS buffer cuts the DRAM
  // requirement by an order of magnitude for low bit-rates.
  const std::int64_t n = 9000;
  const BytesPerSecond b = 10 * kKBps;
  auto direct = TotalBufferSize(n, b, DiskAt(n));
  ASSERT_TRUE(direct.ok());
  MemsBufferParams params = PaperParams(n);
  params.mems_capacity_override = kInf;
  auto buffered = SolveMemsBuffer(n, b, params);
  ASSERT_TRUE(buffered.ok()) << buffered.status().ToString();
  EXPECT_LT(buffered.value().dram_total, direct.value() / 3.0);
}

TEST(Theorem2Test, UnlimitedCapacityGivesSupremumSizing) {
  const std::int64_t n = 100;
  const BytesPerSecond b = 1 * kMBps;
  MemsBufferParams params = PaperParams(n);
  params.mems_capacity_override = kInf;
  auto sizing = SolveMemsBuffer(n, b, params);
  ASSERT_TRUE(sizing.ok());
  EXPECT_EQ(sizing.value().t_disk, kInf);
  // Supremum per-stream buffer: B * C * (1 + (2k-2)/N).
  const double expected =
      b * sizing.value().c * (1.0 + 2.0 / 100.0);
  EXPECT_NEAR(sizing.value().s_mems_dram, expected, 1e-6);
  // Any finite T_disk needs strictly more DRAM.
  auto finite = SolveMemsBuffer(n, b, PaperParams(n), 50.0);
  ASSERT_TRUE(finite.ok());
  EXPECT_GT(finite.value().s_mems_dram, sizing.value().s_mems_dram);
}

TEST(Theorem2Test, SMemsDramDecreasesWithTdisk) {
  const std::int64_t n = 100;
  const BytesPerSecond b = 1 * kMBps;
  auto params = PaperParams(n);
  Bytes prev = kInf;
  for (Seconds t : {10.0, 20.0, 40.0, 80.0}) {
    auto sizing = SolveMemsBuffer(n, b, params, t);
    ASSERT_TRUE(sizing.ok());
    EXPECT_LT(sizing.value().s_mems_dram, prev);
    prev = sizing.value().s_mems_dram;
  }
}

TEST(Theorem2Test, BandwidthDomainEnforced) {
  // k R_mems must exceed 2 (N + k - 1) B: with k=2 G3 devices (640 MB/s)
  // the limit is just under N = 319 at 1 MB/s.
  const BytesPerSecond b = 1 * kMBps;
  EXPECT_TRUE(FeasibleTdiskRange(250, b, PaperParams(250)).ok());
  auto too_many = FeasibleTdiskRange(3200, b, PaperParams(3200));
  EXPECT_FALSE(too_many.ok());
  EXPECT_EQ(too_many.status().code(), StatusCode::kInfeasible);
}

TEST(Theorem2Test, SingleStreamRejected) {
  EXPECT_EQ(SolveMemsBuffer(1, 1 * kMBps, PaperParams(2)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Corollary2Test, KDevicesScaleLikeOneBigDevice) {
  // Corollary 2: for N divisible by k, a k-bank behaves as one device
  // with k x rate and latency/k. Compare the k-device solution against a
  // single hypothetical scaled device (the k-1 slack terms vanish as the
  // comparison device absorbs them; check within 5%).
  const std::int64_t n = 120;
  const BytesPerSecond b = 500 * kKBps;
  const Seconds t_disk = 30.0;

  auto params_k = PaperParams(n, 4);
  auto sized_k = SolveMemsBuffer(n, b, params_k, t_disk);
  ASSERT_TRUE(sized_k.ok());

  MemsBufferParams params_one = PaperParams(n, 1);
  params_one.mems.rate *= 4;
  params_one.mems.latency /= 4;
  params_one.mems.capacity *= 4;
  auto sized_one = SolveMemsBuffer(n, b, params_one, t_disk);
  ASSERT_TRUE(sized_one.ok());

  EXPECT_NEAR(sized_k.value().s_mems_dram / sized_one.value().s_mems_dram,
              1.0, 0.06);
}

TEST(MinBufferDevicesTest, PaperUsesTwoG3ForFutureDisk) {
  EXPECT_EQ(DevicesForFullDiskUtilization(300 * kMBps, 320 * kMBps), 2);
  // 100 streams at 1 MB/s: one G3 (320 > 2*101) suffices... 320 > 202.
  auto k = MinBufferDevices(100, 1 * kMBps, 320 * kMBps);
  ASSERT_TRUE(k.ok());
  EXPECT_EQ(k.value(), 1);
  // 200 streams at 1 MB/s need 2 x (201) = 402 MB/s -> k = 2.
  auto k2 = MinBufferDevices(200, 1 * kMBps, 320 * kMBps);
  ASSERT_TRUE(k2.ok());
  EXPECT_EQ(k2.value(), 2);
}

TEST(MinBufferDevicesTest, InfeasibleWhenPerDeviceSlackDominates) {
  // Each extra device adds 2B of imbalance load; if even huge k cannot
  // catch up, report infeasibility.
  auto k = MinBufferDevices(100000, 1 * kMBps, 100 * kMBps, 64);
  EXPECT_FALSE(k.ok());
}

// §3.1.2's design choice, made checkable: striping every disk IO across
// the bank makes each device pay every IO's positioning cost, so the
// minimum MEMS cycle C — and with it the DRAM bill — grows ~k-fold.
TEST(PlacementTest, StripingIosInflatesDramRoughlyKFold) {
  const std::int64_t n = 100, k = 4;
  const BytesPerSecond b = 1 * kMBps;
  MemsBufferParams rr = PaperParams(n, k);
  MemsBufferParams striped = rr;
  striped.placement = BufferPlacement::kStripedIos;

  auto range_rr = FeasibleTdiskRange(n, b, rr);
  auto range_striped = FeasibleTdiskRange(n, b, striped);
  ASSERT_TRUE(range_rr.ok());
  ASSERT_TRUE(range_striped.ok());
  EXPECT_GT(range_striped.value().c, range_rr.value().c * (k - 1));
  EXPECT_LT(range_striped.value().c, range_rr.value().c * (k + 1));

  const Seconds t = 60.0;
  auto sized_rr = SolveMemsBuffer(n, b, rr, t);
  auto sized_striped = SolveMemsBuffer(n, b, striped, t);
  ASSERT_TRUE(sized_rr.ok());
  ASSERT_TRUE(sized_striped.ok());
  EXPECT_GT(sized_striped.value().s_mems_dram,
            2.0 * sized_rr.value().s_mems_dram);
}

TEST(PlacementTest, StripedDomainLacksImbalanceSlack) {
  // Striped placement balances perfectly, so its bandwidth domain is
  // k*Rm > 2*N*B̄ exactly, while round-robin loses k-1 streams of slack
  // to ceil(N/k) imbalance. With a slow 100 MB/s device and k=3, N=149
  // at 1 MB/s sits exactly between the two domains.
  const BytesPerSecond b = 1 * kMBps;
  MemsBufferParams params = PaperParams(149, 3);
  params.mems.rate = 100 * kMBps;
  MemsBufferParams striped = params;
  striped.placement = BufferPlacement::kStripedIos;
  EXPECT_TRUE(FeasibleTdiskRange(149, b, striped).ok());
  auto rr = FeasibleTdiskRange(149, b, params);
  EXPECT_FALSE(rr.ok());
  EXPECT_EQ(rr.status().code(), StatusCode::kInfeasible);
}

TEST(PlacementTest, SingleDevicePlacementsCoincide) {
  const std::int64_t n = 50;
  const BytesPerSecond b = 1 * kMBps;
  MemsBufferParams rr = PaperParams(n, 1);
  MemsBufferParams striped = rr;
  striped.placement = BufferPlacement::kStripedIos;
  auto a = SolveMemsBuffer(n, b, rr, 10.0);
  auto s = SolveMemsBuffer(n, b, striped, 10.0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(a.value().s_mems_dram, s.value().s_mems_dram, 1e-9);
}

TEST(PlacementTest, Names) {
  EXPECT_STREQ(BufferPlacementName(BufferPlacement::kRoundRobinStreams),
               "round-robin");
  EXPECT_STREQ(BufferPlacementName(BufferPlacement::kStripedIos),
               "striped");
}

TEST(Theorem2Test, MemsBankCanBufferBoundary) {
  // k R > 2 (N + k - 1) B boundary: k=1, R=320 MB/s, B=1 MB/s -> N < 160.
  EXPECT_TRUE(MemsBankCanBuffer(159, 1 * kMBps, 1, 320 * kMBps));
  EXPECT_FALSE(MemsBankCanBuffer(160, 1 * kMBps, 1, 320 * kMBps));
}

}  // namespace
}  // namespace memstream::model
