#include "workload/arrival_sim.h"

#include <cmath>

#include <gtest/gtest.h>

#include "workload/catalog.h"
#include "workload/popularity.h"

namespace memstream::workload {
namespace {

std::vector<StreamRequest> PoissonTrace(double arrival_rate,
                                        Seconds duration, Seconds horizon,
                                        std::uint64_t seed) {
  auto catalog = Catalog::Uniform(100, 1 * kMBps, duration);
  EXPECT_TRUE(catalog.ok());
  Rng rng(seed);
  auto requests = GenerateRequests(
      catalog.value(), [](Rng& r) { return r.NextInt(0, 99); },
      arrival_rate, horizon, rng);
  EXPECT_TRUE(requests.ok());
  return std::move(requests).value();
}

TEST(ArrivalSimTest, NoRejectionsUnderLightLoad) {
  // Offered load a = 0.5/s * 10 s = 5 erlangs against 100 slots.
  auto trace = PoissonTrace(0.5, 10.0, 10000.0, 1);
  auto result = StudyAdmission(trace, 100, 10000.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rejected, 0);
  EXPECT_NEAR(result.value().mean_occupancy, 5.0, 0.5);
  EXPECT_NEAR(result.value().utilization, 0.05, 0.005);
}

TEST(ArrivalSimTest, HeavyLoadRejectsAndSaturates) {
  // a = 10/s * 100 s = 1000 erlangs against 50 slots: ~95% blocking.
  auto trace = PoissonTrace(10.0, 100.0, 5000.0, 2);
  auto result = StudyAdmission(trace, 50, 5000.0);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().rejection_rate, 0.9);
  EXPECT_GT(result.value().utilization, 0.95);
  EXPECT_EQ(result.value().peak_occupancy, 50);
}

TEST(ArrivalSimTest, AccountingBalances) {
  auto trace = PoissonTrace(2.0, 200.0, 2000.0, 3);
  auto result = StudyAdmission(trace, 100, 2000.0);
  ASSERT_TRUE(result.ok());
  const auto& r = result.value();
  EXPECT_EQ(r.admitted + r.rejected, r.offered);
  EXPECT_LE(r.peak_occupancy, 100);
  EXPECT_GE(r.mean_occupancy, 0.0);
}

TEST(ArrivalSimTest, RejectionMatchesErlangB) {
  // a = 3/s * 60 s = 180 erlangs on 180 servers: B ~ 0.052. A long
  // trace should land within a few points of the formula.
  const double arrival = 3.0, duration = 60.0;
  auto trace = PoissonTrace(arrival, duration, 50000.0, 4);
  const std::int64_t capacity = 180;
  auto result = StudyAdmission(trace, capacity, 50000.0);
  ASSERT_TRUE(result.ok());
  const double expected = ErlangB(arrival * duration, capacity);
  EXPECT_NEAR(result.value().rejection_rate, expected, 0.02);
}

TEST(ArrivalSimTest, RejectionMonotoneInLoad) {
  double prev = -1;
  for (double rate : {1.0, 2.0, 4.0, 8.0}) {
    auto trace = PoissonTrace(rate, 100.0, 5000.0, 5);
    auto result = StudyAdmission(trace, 60, 5000.0);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result.value().rejection_rate, prev - 0.02);
    prev = result.value().rejection_rate;
  }
}

TEST(ErlangBTest, KnownValues) {
  // Classic reference points.
  EXPECT_NEAR(ErlangB(1.0, 1), 0.5, 1e-12);
  EXPECT_NEAR(ErlangB(2.0, 2), 0.4, 1e-12);
  // Light load on many servers: essentially no blocking.
  EXPECT_LT(ErlangB(1.0, 20), 1e-18);
  // Degenerate inputs.
  EXPECT_DOUBLE_EQ(ErlangB(0.0, 10), 0.0);
  EXPECT_DOUBLE_EQ(ErlangB(5.0, 0), 0.0);
}

TEST(ErlangBTest, MonotoneInLoadAndCapacity) {
  EXPECT_LT(ErlangB(10, 20), ErlangB(20, 20));
  EXPECT_GT(ErlangB(10, 10), ErlangB(10, 20));
}

TEST(ArrivalSimTest, InvalidInputsRejected) {
  auto trace = PoissonTrace(1.0, 10.0, 100.0, 6);
  EXPECT_FALSE(StudyAdmission(trace, 0, 100.0).ok());
  EXPECT_FALSE(StudyAdmission(trace, 10, 0.0).ok());
  // Unsorted trace detected.
  std::vector<StreamRequest> unsorted{{5.0, 0, 10.0}, {1.0, 0, 10.0}};
  EXPECT_FALSE(StudyAdmission(unsorted, 10, 100.0).ok());
}

}  // namespace
}  // namespace memstream::workload
