#include "device/device_cache.h"

#include <gtest/gtest.h>

#include "device/device_catalog.h"
#include "device/disk.h"

namespace memstream::device {
namespace {

DiskDrive Backing() {
  auto disk = DiskDrive::Create(FutureDisk2007());
  EXPECT_TRUE(disk.ok());
  return std::move(disk).value();
}

DeviceCacheParameters SmallCache() {
  DeviceCacheParameters p;
  p.cache_bytes = 4 * kMB;
  p.segment_bytes = 1 * kMB;
  p.cache_rate = 2 * kGBps;
  return p;
}

TEST(DeviceCacheTest, RepeatAccessHits) {
  DiskDrive disk = Backing();
  auto cached = CachedDevice::Create(&disk, SmallCache());
  ASSERT_TRUE(cached.ok());
  const IoSpan io{0, 1 * kMB};
  auto miss = cached.value().Service(io, nullptr);
  auto hit = cached.value().Service(io, nullptr);
  ASSERT_TRUE(miss.ok());
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(cached.value().stats().misses, 1);
  EXPECT_EQ(cached.value().stats().hits, 1);
  // Hit avoids positioning entirely: ~0.5 ms transfer vs ~ms-scale miss.
  EXPECT_LT(hit.value(), miss.value() * 0.5);
  EXPECT_NEAR(hit.value(), 1 * kMB / (2 * kGBps), 1e-12);
}

TEST(DeviceCacheTest, PartialResidencyIsAMiss) {
  DiskDrive disk = Backing();
  auto cached = CachedDevice::Create(&disk, SmallCache());
  ASSERT_TRUE(cached.ok());
  ASSERT_TRUE(cached.value().Service({0, 1 * kMB}, nullptr).ok());
  // Spans segments 0-1; only 0 is resident.
  ASSERT_TRUE(cached.value().Service({0, 2 * kMB}, nullptr).ok());
  EXPECT_EQ(cached.value().stats().misses, 2);
  // Now both segments are resident.
  ASSERT_TRUE(cached.value().Service({0, 2 * kMB}, nullptr).ok());
  EXPECT_EQ(cached.value().stats().hits, 1);
}

TEST(DeviceCacheTest, LruEvictsColdSegments) {
  DiskDrive disk = Backing();
  auto cached = CachedDevice::Create(&disk, SmallCache());  // 4 segments
  ASSERT_TRUE(cached.ok());
  // Fill segments 0..3, then touch 4: segment 0 must be evicted.
  for (std::int64_t s = 0; s <= 4; ++s) {
    ASSERT_TRUE(cached.value()
                    .Service({static_cast<std::int64_t>(s * kMB), 1 * kMB},
                             nullptr)
                    .ok());
  }
  EXPECT_EQ(cached.value().stats().evictions, 1);
  EXPECT_EQ(cached.value().resident_segments(), 4);
  // Segment 0 misses again; segment 4 hits.
  ASSERT_TRUE(cached.value().Service({0, 1 * kMB}, nullptr).ok());
  EXPECT_EQ(cached.value().stats().misses, 6);
  ASSERT_TRUE(cached.value()
                  .Service({static_cast<std::int64_t>(4 * kMB), 1 * kMB},
                           nullptr)
                  .ok());
  EXPECT_EQ(cached.value().stats().hits, 1);
}

TEST(DeviceCacheTest, TouchRefreshesRecency) {
  DiskDrive disk = Backing();
  auto cached = CachedDevice::Create(&disk, SmallCache());
  ASSERT_TRUE(cached.ok());
  for (std::int64_t s = 0; s <= 3; ++s) {
    ASSERT_TRUE(cached.value()
                    .Service({static_cast<std::int64_t>(s * kMB), 1 * kMB},
                             nullptr)
                    .ok());
  }
  // Re-touch segment 0, then bring in segment 4: the eviction victim
  // must be segment 1, so 0 still hits.
  ASSERT_TRUE(cached.value().Service({0, 1 * kMB}, nullptr).ok());
  ASSERT_TRUE(cached.value()
                  .Service({static_cast<std::int64_t>(4 * kMB), 1 * kMB},
                           nullptr)
                  .ok());
  const auto hits_before = cached.value().stats().hits;
  ASSERT_TRUE(cached.value().Service({0, 1 * kMB}, nullptr).ok());
  EXPECT_EQ(cached.value().stats().hits, hits_before + 1);
}

TEST(DeviceCacheTest, SequentialStreamingGetsNoHits) {
  // The paper's point: streaming data has no reuse, so an on-device
  // cache contributes nothing to continuous media service.
  DiskDrive disk = Backing();
  auto cached = CachedDevice::Create(&disk, SmallCache());
  ASSERT_TRUE(cached.ok());
  for (std::int64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(cached.value()
                    .Service({static_cast<std::int64_t>(i * 8 * kMB),
                              1 * kMB},
                             nullptr)
                    .ok());
  }
  EXPECT_EQ(cached.value().stats().hits, 0);
  EXPECT_DOUBLE_EQ(cached.value().stats().HitRate(), 0.0);
}

TEST(DeviceCacheTest, ResetClearsEverything) {
  DiskDrive disk = Backing();
  auto cached = CachedDevice::Create(&disk, SmallCache());
  ASSERT_TRUE(cached.ok());
  ASSERT_TRUE(cached.value().Service({0, 1 * kMB}, nullptr).ok());
  cached.value().Reset();
  EXPECT_EQ(cached.value().resident_segments(), 0);
  EXPECT_EQ(cached.value().stats().misses, 0);
}

TEST(DeviceCacheTest, PassesThroughDeviceCharacteristics) {
  DiskDrive disk = Backing();
  auto cached = CachedDevice::Create(&disk, SmallCache());
  ASSERT_TRUE(cached.ok());
  EXPECT_DOUBLE_EQ(cached.value().Capacity(), disk.Capacity());
  EXPECT_DOUBLE_EQ(cached.value().MaxTransferRate(),
                   disk.MaxTransferRate());
  EXPECT_EQ(cached.value().name(), disk.name() + "+cache");
}

TEST(DeviceCacheTest, InvalidParametersRejected) {
  DiskDrive disk = Backing();
  DeviceCacheParameters p = SmallCache();
  EXPECT_FALSE(CachedDevice::Create(nullptr, p).ok());
  p.segment_bytes = 0;
  EXPECT_FALSE(CachedDevice::Create(&disk, p).ok());
  p = SmallCache();
  p.cache_bytes = p.segment_bytes / 2;
  EXPECT_FALSE(CachedDevice::Create(&disk, p).ok());
}

TEST(DeviceCacheTest, OutOfRangeRejected) {
  DiskDrive disk = Backing();
  auto cached = CachedDevice::Create(&disk, SmallCache());
  ASSERT_TRUE(cached.ok());
  EXPECT_FALSE(cached.value()
                   .Service({static_cast<std::int64_t>(disk.Capacity()), 1},
                            nullptr)
                   .ok());
}

}  // namespace
}  // namespace memstream::device
