// EventQueue after the flat 4-ary-heap rewrite: ordering, stable FIFO
// tie-breaking, Clear() mid-Run(), and the allocation-free steady state
// (counting operator new, as in move_only_function_test).

#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <utility>
#include <vector>

#include "sim/simulator.h"

namespace {

std::atomic<std::int64_t> g_allocations{0};

}  // namespace

// GCC pairs `new` expressions with the free() inside these replaced
// operators and warns about the malloc/free crossing; it is intentional
// here — the replacement is malloc-backed on both sides.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

// The nothrow forms must be replaced too (std::stable_sort's temporary
// buffer allocates through them): leaving them default would pair the
// library allocator's new with our free.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace memstream::sim {
namespace {

std::int64_t AllocationCount() {
  return g_allocations.load(std::memory_order_relaxed);
}

TEST(EventQueueHeapTest, PopsInTimeOrderAcrossRandomInsertions) {
  EventQueue q;
  std::vector<int> fired;
  // Insertion order deliberately scrambled relative to firing times.
  const double times[] = {5.0, 1.0, 4.0, 2.0, 3.0, 0.5, 6.0, 2.5};
  for (int i = 0; i < 8; ++i) {
    q.Push(times[i], [&fired, i] { fired.push_back(i); });
  }
  double last = -1.0;
  while (!q.empty()) {
    Seconds when = 0;
    q.Pop(&when)();
    EXPECT_GE(when, last);
    last = when;
  }
  EXPECT_EQ(fired.size(), 8u);
}

TEST(EventQueueHeapTest, FifoTieBreakSurvivesDeepHeaps) {
  // More ties than one 4-ary node's children, interleaved with other
  // times, so sift-down has to preserve sequence order through moves.
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 32; ++i) {
    q.Push(1.0, [&fired, i] { fired.push_back(i); });
  }
  q.Push(0.5, [&fired] { fired.push_back(-1); });
  q.Push(2.0, [&fired] { fired.push_back(-2); });
  while (!q.empty()) {
    Seconds when = 0;
    q.Pop(&when)();
  }
  ASSERT_EQ(fired.size(), 34u);
  EXPECT_EQ(fired.front(), -1);
  EXPECT_EQ(fired.back(), -2);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(fired[static_cast<size_t>(i) + 1], i);
}

TEST(EventQueueHeapTest, SteadyStatePushPopDoesNotAllocate) {
  EventQueue q;
  // Warm up: let the backing vector reach its high-water capacity.
  std::int64_t sink = 0;
  for (int i = 0; i < 64; ++i) {
    q.Push(static_cast<double>(i % 7), [&sink, i] { sink += i; });
  }
  while (!q.empty()) {
    Seconds when = 0;
    q.Pop(&when)();
  }
  // Steady state: captures of two pointers/ints stay far below the
  // 48-byte inline budget, and the vector never regrows.
  const std::int64_t before = AllocationCount();
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 64; ++i) {
      q.Push(static_cast<double>((i * 13) % 11), [&sink, i] { sink += i; });
    }
    while (!q.empty()) {
      Seconds when = 0;
      q.Pop(&when)();
    }
  }
  EXPECT_EQ(AllocationCount(), before)
      << "steady-state push/pop must be allocation-free";
  EXPECT_GT(sink, 0);
}

TEST(EventQueueHeapTest, CallbackCapturesUpToInlineBudgetStayInline) {
  struct Capture {
    std::int64_t a[6] = {};  // exactly the 48-byte inline budget
  };
  static_assert(
      EventCallback::kStoredInline<decltype([cap = Capture()] { (void)cap; })>);
  EventQueue q;
  std::int64_t warm_sink = 0;
  q.Push(0.0, [&warm_sink] { ++warm_sink; });
  Seconds when = 0;
  q.Pop(&when)();
  const std::int64_t before = AllocationCount();
  Capture cap;
  q.Push(1.0, [cap] { (void)cap.a; });
  q.Pop(&when)();
  EXPECT_EQ(AllocationCount(), before);
}

TEST(EventQueueHeapTest, ClearInsideCallbackMidRunIsSafe) {
  std::vector<int> fired;
  // 20 events; event #3 clears the simulator's queue via Reset-like
  // behavior — here directly through a queue owned by the test.
  EventQueue q;
  for (int i = 0; i < 20; ++i) {
    q.Push(static_cast<double>(i), [&fired, &q, i] {
      fired.push_back(i);
      if (i == 3) q.Clear();
    });
  }
  while (!q.empty()) {
    Seconds when = 0;
    q.Pop(&when)();
  }
  // Events 0..3 fired; the clear dropped the rest.
  ASSERT_EQ(fired.size(), 4u);
  EXPECT_EQ(fired.back(), 3);
  EXPECT_TRUE(q.empty());
  // The queue remains usable after a mid-drain Clear().
  q.Push(1.0, [&fired] { fired.push_back(100); });
  Seconds when = 0;
  q.Pop(&when)();
  EXPECT_EQ(fired.back(), 100);
}

TEST(EventQueueHeapTest, SimulatorStopInsideEventStopsRun) {
  Simulator sim;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(sim.Schedule(static_cast<double>(i),
                             [&fired, &sim, i] {
                               fired.push_back(i);
                               if (i == 4) sim.Stop();
                             })
                    .ok());
  }
  auto processed = sim.Run();
  ASSERT_TRUE(processed.ok());
  EXPECT_EQ(processed.value(), 5);
  EXPECT_EQ(fired.back(), 4);
}

TEST(EventQueueHeapTest, PushDuringPopCallbackKeepsOrdering) {
  EventQueue q;
  std::vector<double> fired_times;
  q.Push(1.0, [&] {
    fired_times.push_back(1.0);
    q.Push(1.5, [&] { fired_times.push_back(1.5); });
    q.Push(0.5, [&] { fired_times.push_back(0.5); });  // already past
  });
  q.Push(2.0, [&] { fired_times.push_back(2.0); });
  while (!q.empty()) {
    Seconds when = 0;
    q.Pop(&when)();
  }
  ASSERT_EQ(fired_times.size(), 4u);
  // The 0.5 event was inserted after time 1.0 fired, so it pops next
  // (the queue orders whatever is pending; the Simulator's monotonic
  // clock is a layer above).
  EXPECT_DOUBLE_EQ(fired_times[1], 0.5);
  EXPECT_DOUBLE_EQ(fired_times[2], 1.5);
  EXPECT_DOUBLE_EQ(fired_times[3], 2.0);
}

TEST(EventQueueHeapTest, LargeRandomizedHeapMatchesSortedOrder) {
  EventQueue q;
  std::vector<std::pair<double, int>> expected;
  std::uint64_t state = 12345;
  for (int i = 0; i < 2000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const double when = static_cast<double>(state % 997);
    expected.emplace_back(when, i);
    q.Push(when, [] {});
  }
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  for (const auto& [when_expected, seq] : expected) {
    Seconds when = 0;
    q.Pop(&when);
    EXPECT_DOUBLE_EQ(when, when_expected);
  }
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace memstream::sim
