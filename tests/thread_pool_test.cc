// ThreadPool: basic execution, the Wait() barrier, inline mode, and
// shutdown draining. Data races in the pool surface under the sanitize
// and tsan presets (the bench-smoke label runs there too).

#include "exp/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

namespace memstream::exp {
namespace {

TEST(ThreadPoolTest, InlineModeRunsTasksOnSubmit) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 0);  // no workers spawned
  int ran = 0;
  pool.Submit([&ran] { ++ran; });
  EXPECT_EQ(ran, 1);  // already done, before Wait()
  pool.Wait();
  EXPECT_EQ(ran, 1);
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> counter{0};
  constexpr int kTasks = 200;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), kTasks);
}

TEST(ThreadPoolTest, WaitIsABarrier) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&done] { done.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(done.load(), (round + 1) * 16);
  }
}

TEST(ThreadPoolTest, TasksMaySubmitFollowUpWork) {
  ThreadPool pool(2);
  std::atomic<int> stage_two{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&pool, &stage_two] {
      pool.Submit([&stage_two] { stage_two.fetch_add(1); });
    });
  }
  pool.Wait();
  EXPECT_EQ(stage_two.load(), 8);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait(): the destructor must drain the queue before joining.
  }
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, MoveOnlyTaskPayloads) {
  ThreadPool pool(2);
  auto value = std::make_unique<int>(7);
  std::atomic<int> seen{0};
  pool.Submit([&seen, v = std::move(value)] { seen.store(*v); });
  pool.Wait();
  EXPECT_EQ(seen.load(), 7);
}

}  // namespace
}  // namespace memstream::exp
