// Unit tests of the per-stream lifecycle journal: slot registration,
// phase transitions, the bounded event buffer, headroom against the
// admitted envelope, the aggregate summary, and the stream.* gauges.

#include "obs/stream_journal.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace memstream::obs {
namespace {

TEST(StreamJournalTest, EnsureStreamIsGetOrCreate) {
  StreamJournal j;
  const std::size_t slot = j.EnsureStream(7, 1e6, 2e6, 0.0);
  EXPECT_EQ(j.EnsureStream(7, 9e9, 9e9, 5.0), slot);  // unchanged
  EXPECT_EQ(j.size(), 1u);
  EXPECT_EQ(j.SlotOf(7), static_cast<std::ptrdiff_t>(slot));
  EXPECT_EQ(j.SlotOf(8), -1);
  const StreamJournalEntry& e = j.entry(slot);
  EXPECT_EQ(e.stream_id, 7);
  EXPECT_DOUBLE_EQ(e.bit_rate, 1e6);
  EXPECT_DOUBLE_EQ(e.envelope_bytes, 2e6);
  ASSERT_EQ(e.events.size(), 1u);
  EXPECT_EQ(e.events[0].kind, StreamEventKind::kAdmitted);
}

TEST(StreamJournalTest, FirstIoMovesAdmittedToPlaying) {
  StreamJournal j;
  const std::size_t slot = j.EnsureStream(1, 1e6, 4e6, 0.0);
  EXPECT_EQ(j.entry(slot).phase, StreamPhase::kAdmitted);
  j.RecordIo(slot, 1.0, 1000, 3e6);
  j.RecordIo(slot, 2.0, 500, 1e6);
  const StreamJournalEntry& e = j.entry(slot);
  EXPECT_EQ(e.phase, StreamPhase::kPlaying);
  EXPECT_EQ(e.ios, 2);
  EXPECT_DOUBLE_EQ(e.bytes, 1500);
  EXPECT_DOUBLE_EQ(e.peak_level_bytes, 3e6);
  EXPECT_EQ(e.occupancy.TotalCount(), 2);
  ASSERT_EQ(e.events.size(), 2u);
  EXPECT_EQ(e.events[1].kind, StreamEventKind::kPlaying);
  EXPECT_DOUBLE_EQ(e.events[1].t, 1.0);
}

TEST(StreamJournalTest, ShedReadmitDepartLifecycle) {
  StreamJournal j;
  const std::size_t slot = j.EnsureStream(3, 1e6, 0, 0.0);
  j.RecordIo(slot, 0.5, 100, 50);
  j.MarkShed(slot, 2.0);
  EXPECT_EQ(j.entry(slot).phase, StreamPhase::kShed);
  j.MarkReadmitted(slot, 4.0);
  EXPECT_EQ(j.entry(slot).phase, StreamPhase::kPlaying);
  j.MarkDeparted(slot, 10.0);
  const StreamJournalEntry& e = j.entry(slot);
  EXPECT_EQ(e.phase, StreamPhase::kDeparted);
  EXPECT_EQ(e.sheds, 1);
  EXPECT_EQ(e.readmits, 1);
  ASSERT_EQ(e.events.size(), 5u);
  const StreamEventKind expect[] = {
      StreamEventKind::kAdmitted, StreamEventKind::kPlaying,
      StreamEventKind::kShed, StreamEventKind::kReadmitted,
      StreamEventKind::kDeparted};
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(e.events[i].kind, expect[i]) << "event " << i;
  }
  // Departed is terminal: later marks are ignored.
  j.MarkShed(slot, 11.0);
  EXPECT_EQ(j.entry(slot).phase, StreamPhase::kDeparted);
  EXPECT_EQ(j.entry(slot).sheds, 1);
}

TEST(StreamJournalTest, DegradedCarriesDetail) {
  StreamJournal j;
  const std::size_t slot = j.EnsureStream(4, 1e6, 0, 0.0);
  j.MarkDegraded(slot, 1.0, 1);  // disk fallback
  const StreamJournalEntry& e = j.entry(slot);
  EXPECT_EQ(e.phase, StreamPhase::kDegraded);
  EXPECT_EQ(e.degrades, 1);
  ASSERT_EQ(e.events.size(), 2u);
  EXPECT_EQ(e.events[1].kind, StreamEventKind::kDegraded);
  EXPECT_DOUBLE_EQ(e.events[1].detail, 1);
}

TEST(StreamJournalTest, EventBufferIsBoundedAndKeepsEarlyEvents) {
  StreamJournalOptions options;
  options.events_per_stream = 3;
  StreamJournal j(options);
  const std::size_t slot = j.EnsureStream(1, 1e6, 0, 0.0);  // event 1
  j.MarkShed(slot, 1.0);                                    // event 2
  j.MarkReadmitted(slot, 2.0);                              // event 3: full
  j.MarkShed(slot, 3.0);
  j.MarkReadmitted(slot, 4.0);
  const StreamJournalEntry& e = j.entry(slot);
  ASSERT_EQ(e.events.size(), 3u);
  EXPECT_EQ(e.events[2].kind, StreamEventKind::kReadmitted);
  EXPECT_DOUBLE_EQ(e.events[2].t, 2.0);  // early events preserved verbatim
  EXPECT_EQ(e.events_dropped, 2);
  // Counters still track the dropped transitions.
  EXPECT_EQ(e.sheds, 2);
  EXPECT_EQ(e.readmits, 2);
}

TEST(StreamJournalTest, HeadroomAgainstEnvelope) {
  StreamJournal j;
  const std::size_t tight = j.EnsureStream(1, 1e6, 100.0, 0.0);
  j.RecordIo(tight, 1.0, 10, 80.0);
  EXPECT_NEAR(j.entry(tight).headroom(), 0.2, 1e-12);
  const std::size_t breached = j.EnsureStream(2, 1e6, 100.0, 0.0);
  j.RecordIo(breached, 1.0, 10, 110.0);
  EXPECT_LT(j.entry(breached).headroom(), 0.0);
  const std::size_t unknown = j.EnsureStream(3, 1e6, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(j.entry(unknown).headroom(), 1.0);
}

TEST(StreamJournalTest, FinalizeDepartsEveryRemainingStream) {
  StreamJournal j;
  const std::size_t a = j.EnsureStream(1, 1e6, 0, 0.0);
  const std::size_t b = j.EnsureStream(2, 1e6, 0, 0.0);
  j.MarkDeparted(a, 5.0);
  j.Finalize(30.0);
  EXPECT_EQ(j.entry(a).phase, StreamPhase::kDeparted);
  EXPECT_EQ(j.entry(b).phase, StreamPhase::kDeparted);
  // The early departure keeps its own timestamp.
  EXPECT_DOUBLE_EQ(j.entry(a).events.back().t, 5.0);
  EXPECT_DOUBLE_EQ(j.entry(b).events.back().t, 30.0);
}

TEST(StreamJournalTest, SummarizeCountsOutcomes) {
  StreamJournal j;
  const std::size_t a = j.EnsureStream(1, 1e6, 100.0, 0.0);
  const std::size_t b = j.EnsureStream(2, 1e6, 100.0, 0.0);
  const std::size_t c = j.EnsureStream(3, 1e6, 100.0, 0.0);
  j.RecordIo(a, 1.0, 10, 90.0);
  j.RecordUnderflows(a, 2.0, 3);
  j.MarkShed(b, 2.0);
  j.MarkReadmitted(b, 3.0);
  j.MarkDegraded(c, 4.0, 0);
  j.MarkShed(c, 5.0);  // still shed at the end
  j.MarkDeparted(a, 9.0);
  const StreamJournalSummary s = j.Summarize();
  EXPECT_EQ(s.count, 3);
  EXPECT_EQ(s.departed, 1);
  EXPECT_EQ(s.shed, 2);
  EXPECT_EQ(s.still_shed, 1);
  EXPECT_EQ(s.readmitted, 1);
  EXPECT_EQ(s.degraded, 1);
  EXPECT_EQ(s.underflow_streams, 1);
  EXPECT_EQ(s.total_ios, 1);
  EXPECT_EQ(s.total_underflows, 3);
  EXPECT_NEAR(s.min_headroom, 1.0 - 90.0 / 100.0, 1e-12);
}

TEST(StreamJournalTest, PublishSummaryExportsGauges) {
  StreamJournal j;
  const std::size_t slot = j.EnsureStream(1, 1e6, 100.0, 0.0);
  j.MarkShed(slot, 1.0);
  MetricsRegistry metrics;
  j.PublishSummary(&metrics);
  EXPECT_DOUBLE_EQ(metrics.gauge("stream.count")->value(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.gauge("stream.shed")->value(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.gauge("stream.still_shed")->value(), 1.0);
  j.PublishSummary(nullptr);  // null sink is a no-op, not a crash
}

TEST(StreamJournalTest, NullTolerantHelpersIgnoreBadTargets) {
  JournalIo(nullptr, 0, 1.0, 10, 10);
  JournalUnderflows(nullptr, 0, 1.0, 1);
  StreamJournal j;
  const std::size_t slot = j.EnsureStream(1, 1e6, 0, 0.0);
  JournalIo(&j, -1, 1.0, 10, 10);        // unregistered stream
  JournalUnderflows(&j, -1, 1.0, 1);
  JournalUnderflows(&j, static_cast<std::ptrdiff_t>(slot), 1.0, 0);  // no-op
  EXPECT_EQ(j.entry(slot).ios, 0);
  EXPECT_EQ(j.entry(slot).underflows, 0);
  JournalIo(&j, static_cast<std::ptrdiff_t>(slot), 1.0, 10, 10);
  EXPECT_EQ(j.entry(slot).ios, 1);
}

}  // namespace
}  // namespace memstream::obs
