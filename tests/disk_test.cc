#include "device/disk.h"

#include <gtest/gtest.h>

#include "device/device_catalog.h"

namespace memstream::device {
namespace {

DiskDrive Future() {
  auto disk = DiskDrive::Create(FutureDisk2007());
  EXPECT_TRUE(disk.ok()) << disk.status().ToString();
  return std::move(disk).value();
}

TEST(DiskTest, FutureDiskHeadlineNumbers) {
  DiskDrive disk = Future();
  EXPECT_DOUBLE_EQ(disk.MaxTransferRate(), 300 * kMBps);
  EXPECT_DOUBLE_EQ(disk.Capacity(), 1000 * kGB);
  // 20 000 RPM -> 3 ms rotation, 1.5 ms average rotational delay;
  // 2.8 ms average seek -> 4.3 ms average access (the paper's L̄_disk).
  EXPECT_NEAR(disk.RotationPeriod(), 3.0 * kMillisecond, 1e-9);
  EXPECT_NEAR(disk.AverageAccessLatency(), 4.3 * kMillisecond, 1e-6);
  EXPECT_NEAR(disk.MaxAccessLatency(), 10.0 * kMillisecond, 1e-6);
}

TEST(DiskTest, ServiceTimeSeekPlusRotationPlusTransfer) {
  DiskDrive disk = Future();
  disk.Reset();
  // From cylinder 0 to itself: no seek, expected rotation, zoned rate.
  auto t = disk.Service({0, 300 * kMB}, nullptr);
  ASSERT_TRUE(t.ok());
  // half rotation (1.5 ms) + 300MB / 300MB/s (1 s)
  EXPECT_NEAR(t.value(), 1.0 + 1.5 * kMillisecond, 1e-6);
}

TEST(DiskTest, SequentialIoFasterThanRandom) {
  DiskDrive disk = Future();
  disk.Reset();
  ASSERT_TRUE(disk.Service({0, 1 * kMB}, nullptr).ok());
  auto sequential = disk.Service({static_cast<std::int64_t>(1 * kMB), 1 * kMB},
                                 nullptr);
  disk.Reset();
  ASSERT_TRUE(disk.Service({0, 1 * kMB}, nullptr).ok());
  auto random = disk.Service(
      {static_cast<std::int64_t>(900 * kGB), 1 * kMB}, nullptr);
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(random.ok());
  EXPECT_LT(sequential.value(), random.value());
}

TEST(DiskTest, InnerZoneTransfersSlower) {
  DiskDrive disk = Future();
  disk.Reset();
  auto outer = disk.Service({0, 100 * kMB}, nullptr);
  disk.Reset();
  auto inner = disk.Service(
      {static_cast<std::int64_t>(999 * kGB - 100 * kMB), 100 * kMB},
      nullptr);
  ASSERT_TRUE(outer.ok());
  ASSERT_TRUE(inner.ok());
  // Compare pure transfer components by subtracting positioning bounds:
  // inner transfer is 300/170 slower, dominating any seek difference.
  EXPECT_GT(inner.value(), outer.value());
}

TEST(DiskTest, HeadPositionAdvances) {
  DiskDrive disk = Future();
  disk.Reset();
  EXPECT_EQ(disk.current_cylinder(), 0);
  ASSERT_TRUE(
      disk.Service({static_cast<std::int64_t>(500 * kGB), 1 * kMB}, nullptr)
          .ok());
  EXPECT_GT(disk.current_cylinder(), 0);
  disk.Reset();
  EXPECT_EQ(disk.current_cylinder(), 0);
}

TEST(DiskTest, OutOfRangeIoRejected) {
  DiskDrive disk = Future();
  EXPECT_FALSE(disk.Service({-1, 1}, nullptr).ok());
  EXPECT_FALSE(
      disk.Service({static_cast<std::int64_t>(1000 * kGB), 1}, nullptr).ok());
  EXPECT_FALSE(disk.Service({0, -5}, nullptr).ok());
}

TEST(DiskTest, SampledRotationWithinOnePeriod) {
  DiskDrive disk = Future();
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    disk.Reset();
    auto t = disk.Service({0, 0}, &rng);
    ASSERT_TRUE(t.ok());
    EXPECT_GE(t.value(), 0.0);
    EXPECT_LE(t.value(), disk.RotationPeriod());
  }
}

TEST(DiskTest, SchedulerDeterminedLatencyImprovesWithLoad) {
  DiskDrive disk = Future();
  auto l1 = disk.SchedulerDeterminedLatency(1);
  auto l100 = disk.SchedulerDeterminedLatency(100);
  auto l10000 = disk.SchedulerDeterminedLatency(10000);
  ASSERT_TRUE(l1.ok());
  ASSERT_TRUE(l100.ok());
  ASSERT_TRUE(l10000.ok());
  EXPECT_GT(l1.value(), l100.value());
  EXPECT_GT(l100.value(), l10000.value());
  // Never better than the rotational floor.
  EXPECT_GE(l10000.value(), 0.5 * disk.RotationPeriod());
  // A single request pays the amortized full sweep-back on top of its gap
  // seek: full stroke + half rotation.
  EXPECT_NEAR(l1.value(),
              disk.seek_model().FullStrokeTime() + 1.5 * kMillisecond, 1e-6);
}

TEST(DiskTest, SchedulerLatencyRejectsNonPositiveN) {
  DiskDrive disk = Future();
  EXPECT_FALSE(disk.SchedulerDeterminedLatency(0).ok());
}

TEST(DiskTest, CreateRejectsBadRpm) {
  DiskParameters p = FutureDisk2007();
  p.rpm = 0;
  EXPECT_FALSE(DiskDrive::Create(p).ok());
}

}  // namespace
}  // namespace memstream::device
