# Byte-identical CSV determinism for the batched SoA cycle engine: runs
# the smoke-trimmed figure benches at 1 and at 4 sweep threads and
# requires every CSV to match the committed goldens in tests/golden/
# byte for byte. Invoked by the golden_csv_determinism ctest (see
# tests/CMakeLists.txt); regenerate the goldens by running the benches
# with MEMSTREAM_SMOKE=1 MEMSTREAM_THREADS=1 and copying
# bench_results/*.csv over tests/golden/.
#
# Inputs: BENCH_BINS ("|"-separated bench binaries), GOLDEN_DIR, WORK_DIR.

cmake_policy(SET CMP0057 NEW)  # IN_LIST

string(REPLACE "|" ";" bins "${BENCH_BINS}")

foreach(threads 1 4)
  set(dir "${WORK_DIR}/t${threads}")
  file(REMOVE_RECURSE "${dir}")
  file(MAKE_DIRECTORY "${dir}")
  foreach(bin IN LISTS bins)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E env MEMSTREAM_SMOKE=1
                MEMSTREAM_THREADS=${threads} "${bin}"
        WORKING_DIRECTORY "${dir}"
        RESULT_VARIABLE rc
        OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR "${bin} failed (threads=${threads}, rc=${rc})")
    endif()
  endforeach()
endforeach()

file(GLOB goldens RELATIVE "${GOLDEN_DIR}" "${GOLDEN_DIR}/*.csv")
file(GLOB produced RELATIVE "${WORK_DIR}/t1/bench_results"
     "${WORK_DIR}/t1/bench_results/*.csv")

foreach(f IN LISTS produced)
  if(NOT f IN_LIST goldens)
    message(FATAL_ERROR
        "no golden for ${f} — regenerate tests/golden (see header)")
  endif()
endforeach()

foreach(f IN LISTS goldens)
  if(NOT f IN_LIST produced)
    message(FATAL_ERROR "golden ${f} was not produced by the smoke run")
  endif()
  foreach(threads 1 4)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
                "${GOLDEN_DIR}/${f}" "${WORK_DIR}/t${threads}/bench_results/${f}"
        RESULT_VARIABLE cmp)
    if(NOT cmp EQUAL 0)
      message(FATAL_ERROR
          "${f} differs from the golden at threads=${threads}")
    endif()
  endforeach()
endforeach()

list(LENGTH goldens n)
message(STATUS "${n} CSVs byte-identical to the goldens at 1 and 4 threads")
