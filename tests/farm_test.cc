#include "server/farm.h"

#include <gtest/gtest.h>

#include "device/device_catalog.h"
#include "model/profiles.h"
#include "model/scale_out.h"
#include "model/timecycle.h"

namespace memstream::server {
namespace {

device::DiskParameters UniformDisk() {
  device::DiskParameters p = device::FutureDisk2007();
  p.inner_rate = p.outer_rate;
  return p;
}

TEST(FarmTest, PlannedFarmRunsJitterFree) {
  auto disk = device::DiskDrive::Create(UniformDisk());
  ASSERT_TRUE(disk.ok());

  model::ScaleOutConfig plan_config;
  plan_config.num_disks = 3;
  plan_config.disk_latency = model::DiskLatencyFn(disk.value());
  plan_config.bit_rate = 1 * kMBps;
  plan_config.dram_budget = 600 * kMB;
  auto plan = model::PlanScaleOut(plan_config);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_GT(plan.value().streams_per_disk, 0);

  auto cycle = model::IoCycleLength(
      plan.value().streams_per_disk, 1 * kMBps,
      model::DiskProfile(disk.value(), plan.value().streams_per_disk));
  ASSERT_TRUE(cycle.ok());

  FarmConfig config;
  config.num_disks = 3;
  config.disk = UniformDisk();
  config.streams_per_disk = plan.value().streams_per_disk;
  config.bit_rate = 1 * kMBps;
  config.cycle = cycle.value();
  config.duration = 20;
  auto report = RunFarm(config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().qos.underflow_events, 0);
  EXPECT_EQ(report.value().cycle_overruns, 0);
  EXPECT_EQ(report.value().total_streams,
            plan.value().total_streams);
  // Double-buffered execution: within 2x of the planner's DRAM figure.
  EXPECT_LE(report.value().peak_dram_demand,
            2.1 * plan.value().dram_total);
}

TEST(FarmTest, ThroughputScalesWithDisks) {
  auto disk = device::DiskDrive::Create(UniformDisk());
  ASSERT_TRUE(disk.ok());
  const std::int64_t n = 20;
  auto cycle = model::IoCycleLength(
      n, 1 * kMBps, model::DiskProfile(disk.value(), n));
  ASSERT_TRUE(cycle.ok());

  std::int64_t prev_ios = 0;
  for (std::int64_t disks : {1, 2, 4}) {
    FarmConfig config;
    config.num_disks = disks;
    config.disk = UniformDisk();
    config.streams_per_disk = n;
    config.bit_rate = 1 * kMBps;
    config.cycle = cycle.value();
    config.duration = 10;
    auto report = RunFarm(config);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report.value().qos.underflow_events, 0);
    EXPECT_GT(report.value().ios_completed, prev_ios);
    prev_ios = report.value().ios_completed;
  }
}

TEST(FarmTest, InvalidInputsRejected) {
  FarmConfig config;
  config.num_disks = 0;
  EXPECT_FALSE(RunFarm(config).ok());
  config = FarmConfig{};
  config.streams_per_disk = 0;
  EXPECT_FALSE(RunFarm(config).ok());
  config = FarmConfig{};
  config.cycle = 0;
  EXPECT_FALSE(RunFarm(config).ok());
}

}  // namespace
}  // namespace memstream::server
