#include "server/cache_server.h"

#include <gtest/gtest.h>

#include "device/device_catalog.h"
#include "model/profiles.h"
#include "model/timecycle.h"

namespace memstream::server {
namespace {

device::DiskDrive UniformFutureDisk() {
  device::DiskParameters p = device::FutureDisk2007();
  p.inner_rate = p.outer_rate;
  auto disk = device::DiskDrive::Create(p);
  EXPECT_TRUE(disk.ok());
  return std::move(disk).value();
}

std::vector<device::MemsDevice> G3Bank(std::int64_t k) {
  std::vector<device::MemsDevice> bank;
  for (std::int64_t i = 0; i < k; ++i) {
    auto dev = device::MemsDevice::Create(device::MemsG3());
    EXPECT_TRUE(dev.ok());
    bank.push_back(std::move(dev).value());
  }
  return bank;
}

model::DeviceProfile G3Profile() {
  return model::MemsProfileMaxLatency(
      device::MemsDevice::Create(device::MemsG3()).value());
}

struct Workload {
  std::vector<CacheStreamSpec> streams;
  CacheServerConfig config;
};

// n_disk uncached + n_cache cached streams, both sides sized analytically
// (Theorem 1 on the disk side, Theorems 3/4 on the cache side).
Workload MakeWorkload(const device::DiskDrive& disk, std::int64_t n_disk,
                      std::int64_t n_cache, std::int64_t k,
                      model::CachePolicy policy, BytesPerSecond b) {
  Workload w;
  w.config.policy = policy;
  if (n_disk > 0) {
    auto cycle = model::IoCycleLength(n_disk, b, model::DiskProfile(disk, n_disk));
    EXPECT_TRUE(cycle.ok());
    w.config.disk_cycle = cycle.value();
  }
  if (n_cache > 0) {
    auto s = model::CachePerStreamBuffer(n_cache, b, k, G3Profile(), policy);
    EXPECT_TRUE(s.ok()) << s.status().ToString();
    w.config.mems_cycle = s.value() / b;
  }

  const Bytes disk_stride =
      disk.Capacity() * 0.9 / std::max<std::int64_t>(n_disk, 1);
  for (std::int64_t i = 0; i < n_disk; ++i) {
    w.streams.push_back({i, b, false, disk_stride * static_cast<double>(i),
                         std::max(disk_stride, 2 * b * w.config.disk_cycle)});
  }
  const Bytes bank_content = policy == model::CachePolicy::kStriped
                                 ? 10 * kGB * static_cast<double>(k)
                                 : 10 * kGB;
  const Bytes cache_stride =
      bank_content * 0.9 / std::max<std::int64_t>(n_cache, 1);
  for (std::int64_t i = 0; i < n_cache; ++i) {
    w.streams.push_back(
        {n_disk + i, b, true, cache_stride * static_cast<double>(i),
         std::max(cache_stride, 2 * b * w.config.mems_cycle)});
  }
  return w;
}

class CachePolicyTest
    : public ::testing::TestWithParam<model::CachePolicy> {};

INSTANTIATE_TEST_SUITE_P(BothPolicies, CachePolicyTest,
                         ::testing::Values(model::CachePolicy::kStriped,
                                           model::CachePolicy::kReplicated),
                         [](const auto& info) {
                           return model::CachePolicyName(info.param);
                         });

// Theorems 3/4 sizing must execute jitter-free under both policies, with
// the disk side running concurrently.
TEST_P(CachePolicyTest, AnalyticSizingJitterFree) {
  device::DiskDrive disk = UniformFutureDisk();
  Workload w = MakeWorkload(disk, 20, 40, 4, GetParam(), 1 * kMBps);
  auto server =
      CacheStreamingServer::Create(&disk, G3Bank(4), w.streams, w.config);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  ASSERT_TRUE(server.value().Run(30.0).ok());

  const CacheServerReport& report = server.value().report();
  EXPECT_EQ(report.qos.underflow_events, 0);
  EXPECT_DOUBLE_EQ(report.qos.underflow_time, 0.0);
  EXPECT_EQ(report.disk_overruns, 0);
  EXPECT_EQ(report.mems_overruns, 0);
  EXPECT_GT(report.disk_cycles, 0);
  EXPECT_GT(report.mems_cycles, 0);
}

TEST_P(CachePolicyTest, EveryStreamPlays) {
  device::DiskDrive disk = UniformFutureDisk();
  Workload w = MakeWorkload(disk, 5, 15, 3, GetParam(), 1 * kMBps);
  auto server =
      CacheStreamingServer::Create(&disk, G3Bank(3), w.streams, w.config);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.value().Run(20.0).ok());
  for (std::size_t i = 0; i < server.value().num_streams(); ++i) {
    EXPECT_GT(server.value().session(i).total_deposited(), 0.0)
        << "stream " << i;
  }
}

TEST(CacheServerTest, CacheOnlyWorkloadNeedsNoDisk) {
  Workload w;
  w.config.policy = model::CachePolicy::kReplicated;
  auto s = model::CachePerStreamBuffer(10, 1 * kMBps, 2, G3Profile(),
                                       w.config.policy);
  ASSERT_TRUE(s.ok());
  w.config.mems_cycle = s.value() / (1 * kMBps);
  for (std::int64_t i = 0; i < 10; ++i) {
    w.streams.push_back({i, 1 * kMBps, true,
                         static_cast<double>(i) * 0.9 * kGB, 0.9 * kGB});
  }
  auto server =
      CacheStreamingServer::Create(nullptr, G3Bank(2), w.streams, w.config);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  ASSERT_TRUE(server.value().Run(20.0).ok());
  EXPECT_EQ(server.value().report().qos.underflow_events, 0);
  EXPECT_EQ(server.value().report().disk_cycles, 0);
}

TEST(CacheServerTest, ReplicatedSpreadsLoadAcrossDevices) {
  device::DiskDrive disk = UniformFutureDisk();
  Workload w = MakeWorkload(disk, 0, 30, 3, model::CachePolicy::kReplicated,
                            1 * kMBps);
  auto server =
      CacheStreamingServer::Create(&disk, G3Bank(3), w.streams, w.config);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.value().Run(20.0).ok());
  // Per-device utilization well below 1 (load split 3 ways).
  EXPECT_LT(server.value().report().mems_utilization, 0.5);
  EXPECT_GT(server.value().report().mems_utilization, 0.0);
}

TEST(CacheServerTest, UndersizedCacheCycleUnderflows) {
  device::DiskDrive disk = UniformFutureDisk();
  // 200 streams at 1 MB/s on one G3 device with a cycle 10x too short:
  // seek overhead per cycle exceeds the cycle.
  Workload w = MakeWorkload(disk, 0, 200, 1, model::CachePolicy::kStriped,
                            1 * kMBps);
  w.config.mems_cycle *= 0.1;
  for (auto& s : w.streams) s.extent *= 2;  // keep one IO inside extents
  auto server =
      CacheStreamingServer::Create(&disk, G3Bank(1), w.streams, w.config);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.value().Run(20.0).ok());
  EXPECT_GT(server.value().report().mems_overruns, 0);
}

TEST(CacheServerTest, CachedStreamBeyondBankRejected) {
  device::DiskDrive disk = UniformFutureDisk();
  CacheServerConfig config;
  config.policy = model::CachePolicy::kReplicated;  // capacity 10 GB
  std::vector<CacheStreamSpec> streams{
      {0, 1 * kMBps, true, 15 * kGB, 1 * kGB}};
  EXPECT_FALSE(
      CacheStreamingServer::Create(&disk, G3Bank(2), streams, config).ok());
}

TEST(CacheServerTest, UncachedStreamWithoutDiskRejected) {
  CacheServerConfig config;
  std::vector<CacheStreamSpec> streams{
      {0, 1 * kMBps, false, 0, 1 * kGB}};
  EXPECT_FALSE(
      CacheStreamingServer::Create(nullptr, G3Bank(1), streams, config)
          .ok());
}

}  // namespace
}  // namespace memstream::server
