#include "workload/popularity.h"

#include <gtest/gtest.h>

namespace memstream::workload {
namespace {

TEST(TwoClassTest, PmfSumsToOne) {
  auto sampler = TwoClassSampler::Create({0.1, 0.9}, 100);
  ASSERT_TRUE(sampler.ok());
  double sum = 0;
  for (std::int64_t t = 0; t < 100; ++t) sum += sampler.value().Pmf(t);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(TwoClassTest, PopularTitlesGetYFractionOfMass) {
  auto sampler = TwoClassSampler::Create({0.1, 0.9}, 1000);
  ASSERT_TRUE(sampler.ok());
  EXPECT_EQ(sampler.value().num_popular(), 100);
  double popular_mass = 0;
  for (std::int64_t t = 0; t < 100; ++t) {
    popular_mass += sampler.value().Pmf(t);
  }
  EXPECT_NEAR(popular_mass, 0.9, 1e-12);
}

TEST(TwoClassTest, UniformWithinClasses) {
  auto sampler = TwoClassSampler::Create({0.2, 0.8}, 10);
  ASSERT_TRUE(sampler.ok());
  EXPECT_DOUBLE_EQ(sampler.value().Pmf(0), sampler.value().Pmf(1));
  EXPECT_DOUBLE_EQ(sampler.value().Pmf(2), sampler.value().Pmf(9));
  EXPECT_GT(sampler.value().Pmf(0), sampler.value().Pmf(2));
}

TEST(TwoClassTest, SampleFrequenciesMatchPmf) {
  auto sampler = TwoClassSampler::Create({0.01, 0.99}, 100);
  ASSERT_TRUE(sampler.ok());
  Rng rng(13);
  std::int64_t popular_hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (sampler.value().Sample(rng) < sampler.value().num_popular()) {
      ++popular_hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(popular_hits) / n, 0.99, 0.005);
}

TEST(TwoClassTest, UniformDistributionSamplesEverywhere) {
  auto sampler = TwoClassSampler::Create({0.5, 0.5}, 10);
  ASSERT_TRUE(sampler.ok());
  Rng rng(7);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    ++counts[static_cast<std::size_t>(sampler.value().Sample(rng))];
  }
  for (int c : counts) EXPECT_GT(c, 1500);
}

TEST(TwoClassTest, InvalidPopularityRejected) {
  EXPECT_FALSE(TwoClassSampler::Create({0.0, 0.9}, 100).ok());
  EXPECT_FALSE(TwoClassSampler::Create({0.9, 0.5}, 100).ok());
  EXPECT_FALSE(TwoClassSampler::Create({0.1, 0.9}, 0).ok());
}

TEST(ZipfSamplerTest, RankZeroMostPopular) {
  auto sampler = ZipfSampler::Create(100, 1.0);
  ASSERT_TRUE(sampler.ok());
  EXPECT_GT(sampler.value().Pmf(0), sampler.value().Pmf(1));
  EXPECT_GT(sampler.value().Pmf(1), sampler.value().Pmf(99));
}

TEST(ZipfSamplerTest, SamplesInRange) {
  auto sampler = ZipfSampler::Create(50, 0.9);
  ASSERT_TRUE(sampler.ok());
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto t = sampler.value().Sample(rng);
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 50);
  }
}

TEST(FitTwoClassTest, RecoversExactTwoClassDistribution) {
  // Build a literal 10:90 pmf over 100 titles and fit it back.
  std::vector<double> pmf;
  for (int i = 0; i < 10; ++i) pmf.push_back(0.9 / 10);
  for (int i = 0; i < 90; ++i) pmf.push_back(0.1 / 90);
  auto fitted = FitTwoClass(pmf, 0.1);
  ASSERT_TRUE(fitted.ok());
  EXPECT_NEAR(fitted.value().x, 0.1, 1e-12);
  EXPECT_NEAR(fitted.value().y, 0.9, 1e-12);
}

TEST(FitTwoClassTest, ZipfHeadCapturesMoreThanUniform) {
  auto sampler = ZipfSampler::Create(1000, 1.0);
  ASSERT_TRUE(sampler.ok());
  std::vector<double> pmf;
  for (std::int64_t t = 0; t < 1000; ++t) {
    pmf.push_back(sampler.value().Pmf(t));
  }
  auto fitted = FitTwoClass(pmf, 0.1);
  ASSERT_TRUE(fitted.ok());
  EXPECT_GT(fitted.value().y, 0.5);  // Zipf(1): top 10% >> 10% of mass
  EXPECT_TRUE(model::IsValidPopularity(fitted.value()));
}

TEST(FitZipfTwoClassTest, HitRatePredictsSampledTrace) {
  // End-to-end: a Zipf(1.0) catalog, a cache holding 5% of the titles.
  // Eq. 11 with the fitted X:Y must predict the sampled hit rate.
  const std::int64_t titles = 1000;
  const double cached = 0.05;
  auto fitted = FitZipfTwoClass(titles, 1.0, cached);
  ASSERT_TRUE(fitted.ok()) << fitted.status().ToString();
  auto analytic = model::HitRate(fitted.value(), cached);
  ASSERT_TRUE(analytic.ok());

  auto sampler = ZipfSampler::Create(titles, 1.0);
  ASSERT_TRUE(sampler.ok());
  Rng rng(41);
  std::int64_t hits = 0;
  const int n = 200000;
  const auto resident = static_cast<std::int64_t>(cached * titles);
  for (int i = 0; i < n; ++i) {
    if (sampler.value().Sample(rng) < resident) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, analytic.value(), 0.01);
}

TEST(FitZipfTwoClassTest, InvalidInputsRejected) {
  EXPECT_FALSE(FitZipfTwoClass(0, 1.0, 0.1).ok());
  EXPECT_FALSE(FitZipfTwoClass(100, -1.0, 0.1).ok());
  EXPECT_FALSE(FitZipfTwoClass(100, 1.0, 0.0).ok());
}

TEST(FitTwoClassTest, InvalidInputsRejected) {
  EXPECT_FALSE(FitTwoClass({}, 0.1).ok());
  EXPECT_FALSE(FitTwoClass({0.5, 0.5}, 0.0).ok());
  EXPECT_FALSE(FitTwoClass({0.0, 0.0}, 0.5).ok());
}

}  // namespace
}  // namespace memstream::workload
