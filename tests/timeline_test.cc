#include "obs/timeline.h"

#include <gtest/gtest.h>

#include <cstddef>

namespace memstream::obs {
namespace {

TEST(TimelineSeriesTest, RecordsEverySampleAtStrideOne) {
  TimelineSeries series("s", "bytes", 16);
  for (int i = 0; i < 10; ++i) {
    series.Record(i * 0.1, static_cast<double>(i));
  }
  EXPECT_EQ(series.stride(), 1u);
  EXPECT_EQ(series.samples_seen(), 10u);
  ASSERT_EQ(series.points().size(), 10u);
  EXPECT_DOUBLE_EQ(series.points()[3].t, 0.3);
  EXPECT_DOUBLE_EQ(series.points()[3].v, 3.0);
}

TEST(TimelineSeriesTest, OverflowDecimatesInPlaceAndDoublesStride) {
  TimelineSeries series("s", "", 8);
  for (int i = 0; i < 9; ++i) {
    series.Record(static_cast<double>(i), static_cast<double>(i));
  }
  // The 9th sample triggered a decimation: every other of the first 8
  // survives, then the 9th is appended.
  EXPECT_EQ(series.stride(), 2u);
  ASSERT_EQ(series.points().size(), 5u);
  EXPECT_DOUBLE_EQ(series.points()[0].v, 0.0);
  EXPECT_DOUBLE_EQ(series.points()[1].v, 2.0);
  EXPECT_DOUBLE_EQ(series.points()[2].v, 4.0);
  EXPECT_DOUBLE_EQ(series.points()[3].v, 6.0);
  EXPECT_DOUBLE_EQ(series.points()[4].v, 8.0);
}

TEST(TimelineSeriesTest, StrideGateSkipsBetweenRetainedSamples) {
  TimelineSeries series("s", "", 8);
  for (int i = 0; i < 9; ++i) {
    series.Record(static_cast<double>(i), static_cast<double>(i));
  }
  ASSERT_EQ(series.stride(), 2u);
  // After doubling, only every second offered sample is retained.
  const std::size_t before = series.points().size();
  series.Record(9.0, 9.0);  // seen_ = 10: (10-1) % 2 == 1 -> skipped
  EXPECT_EQ(series.points().size(), before);
  series.Record(10.0, 10.0);  // seen_ = 11: retained
  EXPECT_EQ(series.points().size(), before + 1);
  EXPECT_DOUBLE_EQ(series.points().back().v, 10.0);
}

TEST(TimelineSeriesTest, LongRunStaysWithinCapacity) {
  TimelineSeries series("s", "", 32);
  for (int i = 0; i < 100000; ++i) {
    series.Record(i * 1e-3, static_cast<double>(i));
  }
  EXPECT_LE(series.points().size(), 32u);
  EXPECT_GE(series.points().size(), 8u);  // the shape survives
  EXPECT_EQ(series.samples_seen(), 100000u);
  EXPECT_GT(series.stride(), 1u);
  // Points remain in time order and span the whole run.
  for (std::size_t i = 1; i < series.points().size(); ++i) {
    EXPECT_LT(series.points()[i - 1].t, series.points()[i].t);
  }
  EXPECT_DOUBLE_EQ(series.points().front().t, 0.0);
  EXPECT_GT(series.points().back().t, 50.0);
}

TEST(TimelineRecorderTest, AddSeriesGetsOrCreatesStableHandles) {
  TimelineRecorder recorder;
  TimelineSeries* a = recorder.AddSeries("stream.0.dram_bytes", "bytes");
  TimelineSeries* b = recorder.AddSeries("stream.1.dram_bytes", "bytes");
  EXPECT_NE(a, b);
  EXPECT_EQ(recorder.size(), 2u);
  // Same name: same handle, unit of the first registration wins.
  TimelineSeries* again = recorder.AddSeries("stream.0.dram_bytes", "MB");
  EXPECT_EQ(again, a);
  EXPECT_EQ(a->unit(), "bytes");
  EXPECT_EQ(recorder.size(), 2u);
  // Growth must not invalidate prior handles (deque storage).
  for (int i = 0; i < 100; ++i) {
    recorder.AddSeries("filler." + std::to_string(i));
  }
  a->Record(1.0, 42.0);
  EXPECT_EQ(recorder.series().front().points().size(), 1u);
  EXPECT_DOUBLE_EQ(recorder.series().front().points()[0].v, 42.0);
}

TEST(TimelineRecorderTest, TotalPointsSumsAcrossSeries) {
  TimelineRecorder recorder;
  TimelineSeries* a = recorder.AddSeries("a");
  TimelineSeries* b = recorder.AddSeries("b");
  for (int i = 0; i < 3; ++i) a->Record(i, i);
  for (int i = 0; i < 5; ++i) b->Record(i, i);
  EXPECT_EQ(recorder.total_points(), 8u);
}

TEST(TimelineRecorderTest, NullSinkRecordIsANoOp) {
  // The instrumentation contract: hot paths call the free helper with a
  // possibly-null handle.
  Record(nullptr, 1.0, 2.0);

  TimelineSeries series("s", "", 4);
  Record(&series, 1.0, 2.0);
  ASSERT_EQ(series.points().size(), 1u);
  EXPECT_DOUBLE_EQ(series.points()[0].v, 2.0);
}

TEST(TimelineRecorderTest, OptionsCapacityAppliesToNewSeries) {
  TimelineOptions options;
  options.max_points_per_series = 4;
  TimelineRecorder recorder(options);
  TimelineSeries* s = recorder.AddSeries("s");
  for (int i = 0; i < 64; ++i) s->Record(i, i);
  EXPECT_LE(s->points().size(), 4u);
  EXPECT_EQ(s->samples_seen(), 64u);
}

}  // namespace
}  // namespace memstream::obs
