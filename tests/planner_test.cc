#include "model/planner.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/math_utils.h"
#include "device/device_catalog.h"

namespace memstream::model {
namespace {

DeviceProfile G3Profile() {
  auto dev = device::MemsDevice::Create(device::MemsG3());
  EXPECT_TRUE(dev.ok());
  return MemsProfileMaxLatency(dev.value());
}

LatencyFn FutureDiskLatency() {
  auto disk = device::DiskDrive::Create(device::FutureDisk2007());
  EXPECT_TRUE(disk.ok());
  return DiskLatencyFn(disk.value());
}

MemsBufferParams BufferParams(std::int64_t n, std::int64_t k = 2) {
  MemsBufferParams p;
  p.k = k;
  p.disk.rate = 300 * kMBps;
  p.disk.latency = FutureDiskLatency()(n);
  p.mems = G3Profile();
  p.mems_capacity_override = 1e18;  // effectively unlimited (per-byte mode)
  return p;
}

CostInputs Prices() {
  CostInputs prices;
  prices.dram_per_byte = 20.0 / kGB;
  prices.mems_per_byte = 1.0 / kGB;
  prices.mems_capacity = 10 * kGB;
  return prices;
}

// --- OptimalTdiskPerByte ----------------------------------------------------

TEST(OptimalTdiskTest, ClosedFormBeatsNeighbors) {
  // A near-saturated single-device bank, where C is large and the
  // per-byte optimum lies strictly inside the feasibility window.
  const std::int64_t n = 150;
  const BytesPerSecond b = 1 * kMBps;
  auto params = BufferParams(n, 1);
  auto best = OptimalTdiskPerByte(n, b, params, Prices());
  ASSERT_TRUE(best.ok()) << best.status().ToString();

  auto range = FeasibleTdiskRange(n, b, params);
  ASSERT_TRUE(range.ok());
  ASSERT_GT(best.value().t_disk, range.value().lower * 1.01)
      << "test needs an interior optimum";

  auto cost_at = [&](Seconds t) -> Dollars {
    auto sizing = SolveMemsBuffer(n, b, params, t);
    EXPECT_TRUE(sizing.ok());
    return CostWithMemsBufferPerByte(n, sizing.value().mems_used,
                                     sizing.value().s_mems_dram, Prices());
  };
  const Dollars at_best = cost_at(best.value().t_disk);
  EXPECT_LE(at_best, cost_at(best.value().t_disk * 1.3) + 1e-9);
  EXPECT_LE(at_best,
            cost_at(std::max(best.value().t_disk * 0.7,
                             range.value().lower)) +
                1e-9);
  EXPECT_NEAR(at_best, best.value().total_cost, 1e-9);
}

TEST(OptimalTdiskTest, BoundaryOptimumClampsToFeasibleWindow) {
  // A lightly-loaded bank: the unconstrained optimum falls below the
  // disk's real-time bound, so the planner must clamp to it.
  const std::int64_t n = 1000;
  const BytesPerSecond b = 100 * kKBps;
  auto params = BufferParams(n, 2);
  auto best = OptimalTdiskPerByte(n, b, params, Prices());
  ASSERT_TRUE(best.ok()) << best.status().ToString();
  auto range = FeasibleTdiskRange(n, b, params);
  ASSERT_TRUE(range.ok());
  EXPECT_NEAR(best.value().t_disk, range.value().lower, 1e-9);
  // Still cheaper at the boundary than slightly inside.
  auto inside = SolveMemsBuffer(n, b, params, range.value().lower * 1.2);
  ASSERT_TRUE(inside.ok());
  EXPECT_LE(best.value().total_cost,
            CostWithMemsBufferPerByte(n, inside.value().mems_used,
                                      inside.value().s_mems_dram,
                                      Prices()) +
                1e-9);
}

TEST(OptimalTdiskTest, MatchesGoldenSectionSearch) {
  const std::int64_t n = 150;
  const BytesPerSecond b = 1 * kMBps;
  auto params = BufferParams(n, 1);
  auto best = OptimalTdiskPerByte(n, b, params, Prices());
  ASSERT_TRUE(best.ok());

  auto range = FeasibleTdiskRange(n, b, params);
  ASSERT_TRUE(range.ok());
  auto numeric = GoldenSectionMinimize(
      [&](double t) {
        auto sizing = SolveMemsBuffer(n, b, params, t);
        return CostWithMemsBufferPerByte(n, sizing.value().mems_used,
                                         sizing.value().s_mems_dram,
                                         Prices());
      },
      range.value().lower, range.value().lower * 1000, {1e-6, 300});
  ASSERT_TRUE(numeric.ok());
  EXPECT_NEAR(best.value().t_disk / numeric.value(), 1.0, 1e-3);
}

TEST(OptimalTdiskTest, SavesMoneyOverDirectForLowBitRate) {
  // Fig. 8's shape: large savings for mp3, small for HDTV.
  const CostInputs prices = Prices();
  auto savings_at = [&](BytesPerSecond b, std::int64_t n) -> Dollars {
    DeviceProfile disk;
    disk.rate = 300 * kMBps;
    disk.latency = FutureDiskLatency()(n);
    auto direct = TotalBufferSize(n, b, disk);
    EXPECT_TRUE(direct.ok());
    const Dollars without = direct.value() * prices.dram_per_byte;
    auto best = OptimalTdiskPerByte(n, b, BufferParams(n), prices);
    EXPECT_TRUE(best.ok());
    return without - best.value().total_cost;
  };
  const Dollars mp3 = savings_at(10 * kKBps, 20000);
  const Dollars hdtv = savings_at(10 * kMBps, 25);
  EXPECT_GT(mp3, 0);
  EXPECT_GT(hdtv, 0);
  EXPECT_GT(mp3, 50 * hdtv);  // orders of magnitude apart in the figure
}

// --- MaxCacheSystemThroughput -----------------------------------------------

CacheSystemConfig PaperCacheConfig(std::int64_t k, Popularity pop,
                                   BytesPerSecond bit_rate,
                                   Dollars budget) {
  CacheSystemConfig config;
  config.total_budget = budget;
  config.dram_per_byte = 20.0 / kGB;
  config.mems_device_cost = 10;
  config.k = k;
  config.policy = CachePolicy::kStriped;
  config.popularity = pop;
  config.mems_capacity = 10 * kGB;
  config.content_size = 1000 * kGB;  // 1 device caches 1% (Fig. 10)
  config.bit_rate = bit_rate;
  config.disk_rate = 300 * kMBps;
  config.disk_latency = FutureDiskLatency();
  config.mems = G3Profile();
  return config;
}

TEST(CacheSystemTest, NoCacheBaselineMatchesTheorem1Budget) {
  auto config = PaperCacheConfig(0, {0.5, 0.5}, 10 * kKBps, 100);
  auto result = MaxCacheSystemThroughput(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().cache_streams, 0);
  EXPECT_GT(result.value().total_streams, 1000);
  EXPECT_LE(result.value().dram_used, result.value().dram_bytes);
  // $100 of DRAM at $20/GB.
  EXPECT_DOUBLE_EQ(result.value().dram_bytes, 5 * kGB);
}

TEST(CacheSystemTest, SkewedPopularityBeatsNoCache) {
  // §5.2.1: for 1:99 the cache wins decisively at 10 KB/s.
  auto without = MaxCacheSystemThroughput(
      PaperCacheConfig(0, {0.01, 0.99}, 10 * kKBps, 100));
  auto with_cache = MaxCacheSystemThroughput(
      PaperCacheConfig(2, {0.01, 0.99}, 10 * kKBps, 100));
  ASSERT_TRUE(without.ok());
  ASSERT_TRUE(with_cache.ok());
  EXPECT_GT(with_cache.value().total_streams,
            without.value().total_streams);
  EXPECT_GT(with_cache.value().hit_rate, 0.9);
}

TEST(CacheSystemTest, UniformPopularityCacheHurts) {
  // §5.2.4: at 50:50 the MEMS cache always degrades performance.
  auto without = MaxCacheSystemThroughput(
      PaperCacheConfig(0, {0.5, 0.5}, 100 * kKBps, 100));
  auto with_cache = MaxCacheSystemThroughput(
      PaperCacheConfig(4, {0.5, 0.5}, 100 * kKBps, 100));
  ASSERT_TRUE(without.ok());
  ASSERT_TRUE(with_cache.ok());
  EXPECT_LT(with_cache.value().total_streams,
            without.value().total_streams);
}

TEST(CacheSystemTest, ThroughputMonotoneInBudget) {
  std::int64_t prev = 0;
  for (Dollars budget : {50.0, 100.0, 200.0, 400.0}) {
    auto result = MaxCacheSystemThroughput(
        PaperCacheConfig(1, {0.05, 0.95}, 100 * kKBps, budget));
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result.value().total_streams, prev);
    prev = result.value().total_streams;
  }
}

TEST(CacheSystemTest, StreamSplitMatchesHitRate) {
  auto result = MaxCacheSystemThroughput(
      PaperCacheConfig(2, {0.05, 0.95}, 100 * kKBps, 200));
  ASSERT_TRUE(result.ok());
  const auto& r = result.value();
  EXPECT_EQ(r.cache_streams + r.disk_streams, r.total_streams);
  EXPECT_NEAR(static_cast<double>(r.cache_streams) /
                  static_cast<double>(r.total_streams),
              r.hit_rate, 0.01);
}

TEST(CacheSystemTest, BudgetTooSmallForDevicesIsInfeasible) {
  auto result = MaxCacheSystemThroughput(
      PaperCacheConfig(20, {0.01, 0.99}, 10 * kKBps, 100));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST(CacheSystemTest, RequiresLatencyFunction) {
  auto config = PaperCacheConfig(1, {0.1, 0.9}, 1 * kMBps, 100);
  config.disk_latency = nullptr;
  EXPECT_FALSE(MaxCacheSystemThroughput(config).ok());
}

// --- BestCacheBankSize -------------------------------------------------------

TEST(BestBankSizeTest, UniformPopularityPrefersNoCache) {
  auto best = BestCacheBankSize(
      PaperCacheConfig(0, {0.5, 0.5}, 100 * kKBps, 100), 8);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best.value(), 0);
}

TEST(BestBankSizeTest, SkewedPopularityPrefersSomeCache) {
  auto best = BestCacheBankSize(
      PaperCacheConfig(0, {0.01, 0.99}, 100 * kKBps, 100), 8);
  ASSERT_TRUE(best.ok());
  EXPECT_GE(best.value(), 1);
}

TEST(BestBankSizeTest, OptimumIsActuallyBest) {
  auto config = PaperCacheConfig(0, {0.05, 0.95}, 100 * kKBps, 100);
  auto best = BestCacheBankSize(config, 8);
  ASSERT_TRUE(best.ok());
  config.k = best.value();
  auto best_streams = MaxCacheSystemThroughput(config);
  ASSERT_TRUE(best_streams.ok());
  for (std::int64_t k = 0; k <= 8; ++k) {
    config.k = k;
    auto result = MaxCacheSystemThroughput(config);
    if (!result.ok()) continue;
    EXPECT_LE(result.value().total_streams,
              best_streams.value().total_streams)
        << "k=" << k;
  }
}

}  // namespace
}  // namespace memstream::model
