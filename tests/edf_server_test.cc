#include "server/edf_server.h"

#include <gtest/gtest.h>

#include "device/device_catalog.h"
#include "model/profiles.h"
#include "model/timecycle.h"

namespace memstream::server {
namespace {

device::DiskDrive UniformFutureDisk() {
  device::DiskParameters p = device::FutureDisk2007();
  p.inner_rate = p.outer_rate;
  auto disk = device::DiskDrive::Create(p);
  EXPECT_TRUE(disk.ok());
  return std::move(disk).value();
}

std::vector<StreamSpec> Spread(std::int64_t n, BytesPerSecond bit_rate,
                               Bytes capacity, Bytes min_extent) {
  std::vector<StreamSpec> streams;
  const Bytes stride = capacity * 0.9 / static_cast<double>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    streams.push_back({i, bit_rate, stride * static_cast<double>(i),
                       std::max(min_extent, stride)});
  }
  return streams;
}

TEST(EdfServerTest, LightLoadJitterFree) {
  device::DiskDrive disk = UniformFutureDisk();
  const std::int64_t n = 20;
  const BytesPerSecond b = 1 * kMBps;
  EdfServerConfig config;
  config.io_playback = 1.0;
  auto server = EdfStreamingServer::Create(
      &disk, Spread(n, b, disk.Capacity(), 4 * b), config);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  ASSERT_TRUE(server.value().Run(60.0).ok());

  const EdfServerReport& report = server.value().report();
  EXPECT_EQ(report.qos.underflow_events, 0);
  EXPECT_EQ(report.deadline_misses, 0);
  EXPECT_GT(report.ios_completed, n * 50);
  for (std::size_t i = 0; i < server.value().num_streams(); ++i) {
    EXPECT_GT(server.value().session(i).total_deposited(), 0.0);
  }
}

TEST(EdfServerTest, IdlesWhenBuffersFull) {
  device::DiskDrive disk = UniformFutureDisk();
  // Two slow streams: the disk is mostly idle.
  EdfServerConfig config;
  config.io_playback = 1.0;
  auto server = EdfStreamingServer::Create(
      &disk, Spread(2, 100 * kKBps, disk.Capacity(), 1 * kMB), config);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.value().Run(60.0).ok());
  EXPECT_GT(server.value().report().idle_time, 30.0);
  EXPECT_LT(server.value().report().device_utilization, 0.1);
  EXPECT_EQ(server.value().report().qos.underflow_events, 0);
}

TEST(EdfServerTest, OverloadMissesDeadlines) {
  device::DiskDrive disk = UniformFutureDisk();
  // 280 DVD streams with small IOs: seek overhead per IO is huge and
  // EDF's deadline ordering cannot amortize it.
  const std::int64_t n = 280;
  EdfServerConfig config;
  config.io_playback = 0.05;  // 50 ms of playback per IO
  auto server = EdfStreamingServer::Create(
      &disk, Spread(n, 1 * kMBps, disk.Capacity(), 1 * kMB), config);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.value().Run(30.0).ok());
  EXPECT_GT(server.value().report().qos.underflow_events, 0);
  EXPECT_GT(server.value().report().deadline_misses, 0);
}

// The classical comparison: at the same per-stream buffer (2 IOs of the
// same playback length), the elevator-batched time-cycle server
// sustains a load that EDF cannot, because EDF pays near-random seeks.
TEST(EdfServerTest, TimeCycleBeatsEdfAtEqualBuffering) {
  const std::int64_t n = 200;
  const BytesPerSecond b = 1 * kMBps;

  // Find the time-cycle operating point.
  device::DiskDrive disk_tc = UniformFutureDisk();
  auto cycle =
      model::IoCycleLength(n, b, model::DiskProfile(disk_tc, n));
  ASSERT_TRUE(cycle.ok());
  DirectServerConfig tc_config;
  tc_config.cycle = cycle.value();
  auto tc_server = DirectStreamingServer::Create(
      &disk_tc, Spread(n, b, disk_tc.Capacity(), 3 * b * cycle.value()),
      tc_config);
  ASSERT_TRUE(tc_server.ok());
  ASSERT_TRUE(tc_server.value().Run(30.0).ok());
  EXPECT_EQ(tc_server.value().report().qos.underflow_events, 0);

  // EDF with the same IO size (same DRAM) on the same load.
  device::DiskDrive disk_edf = UniformFutureDisk();
  EdfServerConfig edf_config;
  edf_config.io_playback = cycle.value();
  auto edf_server = EdfStreamingServer::Create(
      &disk_edf, Spread(n, b, disk_edf.Capacity(), 3 * b * cycle.value()),
      edf_config);
  ASSERT_TRUE(edf_server.ok());
  ASSERT_TRUE(edf_server.value().Run(30.0).ok());

  // EDF wastes positioning time, so it either underflows or at minimum
  // burns measurably more disk time per delivered byte.
  const double tc_busy_per_io =
      tc_server.value().report().total_busy /
      static_cast<double>(tc_server.value().report().ios_completed);
  const double edf_busy_per_io =
      edf_server.value().report().total_busy /
      static_cast<double>(
          std::max<std::int64_t>(edf_server.value().report().ios_completed,
                                 1));
  EXPECT_GT(edf_busy_per_io, tc_busy_per_io * 1.2);
}

TEST(EdfServerTest, CreateValidatesInputs) {
  device::DiskDrive disk = UniformFutureDisk();
  EdfServerConfig config;
  EXPECT_FALSE(
      EdfStreamingServer::Create(nullptr,
                                 Spread(2, 1 * kMBps, 1 * kGB, 10 * kMB),
                                 config)
          .ok());
  EXPECT_FALSE(EdfStreamingServer::Create(&disk, {}, config).ok());
  auto writes = Spread(2, 1 * kMBps, disk.Capacity(), 10 * kMB);
  writes[0].direction = StreamDirection::kWrite;
  EXPECT_FALSE(EdfStreamingServer::Create(&disk, writes, config).ok());
  config.io_playback = 0;
  EXPECT_FALSE(EdfStreamingServer::Create(
                   &disk, Spread(2, 1 * kMBps, disk.Capacity(), 10 * kMB),
                   config)
                   .ok());
}

TEST(EdfServerTest, RunTwiceRejected) {
  device::DiskDrive disk = UniformFutureDisk();
  EdfServerConfig config;
  auto server = EdfStreamingServer::Create(
      &disk, Spread(2, 1 * kMBps, disk.Capacity(), 10 * kMB), config);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.value().Run(5.0).ok());
  EXPECT_EQ(server.value().Run(5.0).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace memstream::server
