// Steady-state allocation discipline of the batched SoA cycle engines:
// after warm-up, an IO cycle on the fast path must perform zero heap
// allocations — the arena recycles last cycle's scratch and the
// structure-of-arrays stream state is sized at Create.
//
// The check uses the profiler's alloc counter (this binary replaces
// global operator new with a counting version, as in event_queue_test):
// each server's cycle PROF_SCOPE accumulates the allocations performed
// inside it. Running the same configuration for a short and a long
// horizon must record the *identical* alloc delta — every allocation is
// warm-up (first-cycle arena growth), and the extra steady-state cycles
// of the long run contribute exactly zero.

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "common/profiler.h"
#include "device/device_catalog.h"
#include "obs/slo.h"
#include "obs/stream_journal.h"
#include "model/mems_buffer.h"
#include "model/mems_cache.h"
#include "model/profiles.h"
#include "model/timecycle.h"
#include "server/cache_server.h"
#include "server/mems_pipeline_server.h"
#include "server/timecycle_server.h"

namespace {
std::atomic<std::int64_t> g_allocations{0};
}  // namespace

// When these operators inline into gtest's test factory, GCC pairs the
// factory's `new` with the std::free inside the replaced delete and
// reports a mismatch; the operators below are a matched malloc/free
// pair, so the warning is spurious.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace memstream::server {
namespace {

std::int64_t CurrentAllocs() {
  return g_allocations.load(std::memory_order_relaxed);
}

device::DiskDrive UniformFutureDisk() {
  device::DiskParameters p = device::FutureDisk2007();
  p.inner_rate = p.outer_rate;
  auto disk = device::DiskDrive::Create(p);
  EXPECT_TRUE(disk.ok());
  return std::move(disk).value();
}

std::vector<device::MemsDevice> G3Bank(std::int64_t k) {
  std::vector<device::MemsDevice> bank;
  for (std::int64_t i = 0; i < k; ++i) {
    auto dev = device::MemsDevice::Create(device::MemsG3());
    EXPECT_TRUE(dev.ok());
    bank.push_back(std::move(dev).value());
  }
  return bank;
}

model::DeviceProfile G3Profile() {
  return model::MemsProfileMaxLatency(
      device::MemsDevice::Create(device::MemsG3()).value());
}

/// Count and alloc delta of every profile region named `name`, summed
/// over the (possibly nested) occurrences.
struct RegionTotals {
  std::int64_t count = 0;
  std::int64_t allocs = 0;
};

void Accumulate(const std::vector<prof::ProfileNode>& nodes,
                const std::string& name, RegionTotals* out) {
  for (const auto& node : nodes) {
    if (node.name == name) {
      out->count += node.count;
      out->allocs += node.alloc_delta;
    }
    Accumulate(node.children, name, out);
  }
}

RegionTotals Totals(const std::string& name) {
  RegionTotals out;
  Accumulate(prof::Profiler::Global().Snapshot().roots, name, &out);
  return out;
}

/// Runs `body(duration)` under a fresh profiler epoch and returns the
/// totals for `region`.
template <typename Body>
RegionTotals Profiled(const std::string& region, Seconds duration,
                      Body&& body) {
  auto& profiler = prof::Profiler::Global();
  profiler.Reset();
  profiler.SetAllocCounter(&CurrentAllocs);
  profiler.Enable();
  body(duration);
  profiler.Disable();
  RegionTotals totals = Totals(region);
  profiler.SetAllocCounter(nullptr);
  profiler.Reset();
  return totals;
}

/// The steady-state-zero assertion: the long run must execute more
/// cycles than the short one while allocating not one byte more inside
/// the cycle region.
template <typename Body>
void ExpectSteadyStateAllocFree(const std::string& region, Seconds short_run,
                                Seconds long_run, Body&& body) {
  const RegionTotals a = Profiled(region, short_run, body);
  const RegionTotals b = Profiled(region, long_run, body);
  ASSERT_GT(a.count, 0) << region << " never ran";
  ASSERT_GT(b.count, a.count) << region << " did not scale with duration";
  EXPECT_EQ(b.allocs, a.allocs)
      << region << ": " << (b.allocs - a.allocs) << " steady-state heap "
      << "allocations across " << (b.count - a.count) << " extra cycles";
}

TEST(CycleAllocTest, DirectServerSteadyStateAllocFree) {
  auto disk = UniformFutureDisk();
  ExpectSteadyStateAllocFree(
      "server.direct.cycle", 10.0, 60.0, [&](Seconds duration) {
        DirectServerConfig config;
        config.cycle = 0.5;
        std::vector<StreamSpec> streams;
        for (int i = 0; i < 8; ++i) {
          StreamSpec s;
          s.id = i;
          s.bit_rate = 1 * kMBps;
          s.disk_offset = static_cast<double>(i) * 10 * kGB;
          s.extent = 5 * kGB;
          streams.push_back(s);
        }
        auto srv = DirectStreamingServer::Create(&disk, streams, config);
        ASSERT_TRUE(srv.ok()) << srv.status().ToString();
        ASSERT_TRUE(srv.value().Run(duration).ok());
      });
}

TEST(CycleAllocTest, JournaledDirectServerSteadyStateAllocFree) {
  // The lifecycle journal and SLO monitor hook every deposit and cycle
  // end; registration allocates at Create, but the steady-state cycle
  // must stay exactly as allocation-free as the unwired server.
  auto disk = UniformFutureDisk();
  obs::StreamJournal journal;
  obs::SloMonitor slo;
  ExpectSteadyStateAllocFree(
      "server.direct.cycle", 10.0, 60.0, [&](Seconds duration) {
        DirectServerConfig config;
        config.cycle = 0.5;
        config.journal = &journal;
        config.slo = &slo;
        std::vector<StreamSpec> streams;
        for (int i = 0; i < 8; ++i) {
          StreamSpec s;
          s.id = i;
          s.bit_rate = 1 * kMBps;
          s.disk_offset = static_cast<double>(i) * 10 * kGB;
          s.extent = 5 * kGB;
          streams.push_back(s);
        }
        auto srv = DirectStreamingServer::Create(&disk, streams, config);
        ASSERT_TRUE(srv.ok()) << srv.status().ToString();
        ASSERT_TRUE(srv.value().Run(duration).ok());
      });
  EXPECT_EQ(journal.size(), 8u);
  EXPECT_NE(slo.Find("cycle_slack"), nullptr);
  EXPECT_GT(slo.Find("cycle_slack")->good(), 0);
}

TEST(CycleAllocTest, PipelineServerSteadyStateAllocFree) {
  auto disk = UniformFutureDisk();
  const std::int64_t n = 20;
  const BytesPerSecond b = 1 * kMBps;
  model::MemsBufferParams params;
  params.k = 2;
  params.disk = model::DiskProfile(disk, n);
  params.mems = G3Profile();
  auto range = model::FeasibleTdiskRange(n, b, params);
  ASSERT_TRUE(range.ok()) << range.status().ToString();
  const Seconds t_disk =
      std::min(range.value().lower * 1.5, range.value().upper);
  auto sizing = model::SolveMemsBuffer(n, b, params, t_disk);
  ASSERT_TRUE(sizing.ok()) << sizing.status().ToString();
  MemsPipelineConfig config;
  config.t_disk = sizing.value().t_disk;
  config.t_mems = sizing.value().t_mems_snapped;
  const Bytes stride = disk.Capacity() * 0.9 / static_cast<double>(n);

  for (const char* region :
       {"server.pipeline.disk_cycle", "server.pipeline.mems_cycle"}) {
    ExpectSteadyStateAllocFree(region, 20.0, 80.0, [&](Seconds duration) {
      std::vector<StreamSpec> streams;
      for (std::int64_t i = 0; i < n; ++i) {
        StreamSpec s;
        s.id = i;
        s.bit_rate = b;
        s.disk_offset = stride * static_cast<double>(i);
        s.extent = std::max(stride, 4 * b * config.t_disk);
        streams.push_back(s);
      }
      auto srv =
          MemsPipelineServer::Create(&disk, G3Bank(2), streams, config);
      ASSERT_TRUE(srv.ok()) << srv.status().ToString();
      ASSERT_TRUE(srv.value().Run(duration).ok());
    });
  }
}

TEST(CycleAllocTest, CacheServerSteadyStateAllocFree) {
  auto disk = UniformFutureDisk();
  const std::int64_t n_disk = 4;
  const std::int64_t n_cache = 8;
  const std::int64_t k = 4;
  const BytesPerSecond b = 1 * kMBps;
  const auto policy = model::CachePolicy::kReplicated;

  CacheServerConfig config;
  config.policy = policy;
  auto cycle =
      model::IoCycleLength(n_disk, b, model::DiskProfile(disk, n_disk));
  ASSERT_TRUE(cycle.ok());
  config.disk_cycle = cycle.value();
  auto s = model::CachePerStreamBuffer(n_cache, b, k, G3Profile(), policy);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  config.mems_cycle = s.value() / b;

  const Bytes disk_stride =
      disk.Capacity() * 0.9 / static_cast<double>(n_disk);
  const Bytes cache_stride = 10 * kGB * 0.9 / static_cast<double>(n_cache);

  for (const char* region :
       {"server.cache.disk_cycle", "server.cache.replicated_mems_cycle"}) {
    ExpectSteadyStateAllocFree(region, 15.0, 60.0, [&](Seconds duration) {
      std::vector<CacheStreamSpec> streams;
      for (std::int64_t i = 0; i < n_disk; ++i) {
        streams.push_back({i, b, false,
                           disk_stride * static_cast<double>(i),
                           std::max(disk_stride, 2 * b * config.disk_cycle)});
      }
      for (std::int64_t i = 0; i < n_cache; ++i) {
        streams.push_back(
            {n_disk + i, b, true, cache_stride * static_cast<double>(i),
             std::max(cache_stride, 2 * b * config.mems_cycle)});
      }
      auto srv =
          CacheStreamingServer::Create(&disk, G3Bank(k), streams, config);
      ASSERT_TRUE(srv.ok()) << srv.status().ToString();
      ASSERT_TRUE(srv.value().Run(duration).ok());
    });
  }
}

}  // namespace
}  // namespace memstream::server
