#include "server/admission.h"

#include <gtest/gtest.h>

#include "device/device_catalog.h"

namespace memstream::server {
namespace {

AdmissionConfig DirectConfig(Bytes dram) {
  auto disk = device::DiskDrive::Create(device::FutureDisk2007());
  EXPECT_TRUE(disk.ok());
  AdmissionConfig config;
  config.dram_budget = dram;
  config.disk_rate = 300 * kMBps;
  config.disk_latency = model::DiskLatencyFn(disk.value());
  return config;
}

AdmissionConfig BufferedConfig(Bytes dram, std::int64_t k) {
  AdmissionConfig config = DirectConfig(dram);
  config.buffer_k = k;
  config.mems = model::MemsProfileMaxLatency(
      device::MemsDevice::Create(device::MemsG3()).value());
  return config;
}

TEST(AdmissionTest, AdmitsUntilDramExhausted) {
  auto ctrl = AdmissionController::Create(DirectConfig(100 * kMB));
  ASSERT_TRUE(ctrl.ok());
  std::int64_t admitted = 0;
  while (true) {
    auto decision = ctrl.value().TryAdmit(1 * kMBps);
    if (!decision.admitted) {
      EXPECT_EQ(decision.reason, "DRAM budget exceeded");
      break;
    }
    ++admitted;
    ASSERT_LT(admitted, 1000) << "runaway admission";
  }
  EXPECT_GT(admitted, 0);
  EXPECT_EQ(ctrl.value().admitted_count(), admitted);
  EXPECT_LE(ctrl.value().CurrentDramRequirement(), 100 * kMB);
}

TEST(AdmissionTest, BandwidthBoundEnforcedEvenWithHugeDram) {
  auto ctrl = AdmissionController::Create(DirectConfig(100 * kTB));
  ASSERT_TRUE(ctrl.ok());
  std::int64_t admitted = 0;
  while (ctrl.value().TryAdmit(10 * kMBps).admitted) {
    ++admitted;
    ASSERT_LT(admitted, 100);
  }
  // 300 MB/s / 10 MB/s = 30, strict inequality -> 29.
  EXPECT_EQ(admitted, 29);
}

TEST(AdmissionTest, MemsBufferAdmitsMoreStreams) {
  // With the same small DRAM, the MEMS buffer (Theorem 2 sizing)
  // sustains far more streams — the paper's core value proposition.
  const Bytes dram = 50 * kMB;
  auto direct = AdmissionController::Create(DirectConfig(dram));
  auto buffered = AdmissionController::Create(BufferedConfig(dram, 2));
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(buffered.ok());
  auto fill = [](AdmissionController& c) {
    std::int64_t n = 0;
    while (c.TryAdmit(100 * kKBps).admitted) {
      ++n;
      if (n > 100000) break;
    }
    return n;
  };
  const auto n_direct = fill(direct.value());
  const auto n_buffered = fill(buffered.value());
  // Buffered per-stream DRAM is ~2x smaller here (the bank itself
  // eventually saturates, so the advantage is bounded).
  EXPECT_GT(n_buffered, static_cast<std::int64_t>(1.5 * n_direct));
}

TEST(AdmissionTest, ReleaseFreesCapacity) {
  auto ctrl = AdmissionController::Create(DirectConfig(100 * kMB));
  ASSERT_TRUE(ctrl.ok());
  while (ctrl.value().TryAdmit(1 * kMBps).admitted) {
  }
  const auto full = ctrl.value().admitted_count();
  ASSERT_TRUE(ctrl.value().Release(1 * kMBps).ok());
  EXPECT_EQ(ctrl.value().admitted_count(), full - 1);
  EXPECT_TRUE(ctrl.value().TryAdmit(1 * kMBps).admitted);
}

TEST(AdmissionTest, ReleaseUnknownStreamFails) {
  auto ctrl = AdmissionController::Create(DirectConfig(100 * kMB));
  ASSERT_TRUE(ctrl.ok());
  EXPECT_EQ(ctrl.value().Release(5 * kMBps).code(), StatusCode::kNotFound);
}

TEST(AdmissionTest, RejectionLeavesStateUnchanged) {
  auto ctrl = AdmissionController::Create(DirectConfig(10 * kKB));
  ASSERT_TRUE(ctrl.ok());
  // One 10 MB/s stream needs ~88 KB of buffer, far over a 10 KB budget.
  auto decision = ctrl.value().TryAdmit(10 * kMBps);
  EXPECT_FALSE(decision.admitted);
  EXPECT_EQ(ctrl.value().admitted_count(), 0);
  EXPECT_DOUBLE_EQ(ctrl.value().CurrentDramRequirement(), 0.0);
}

TEST(AdmissionTest, InvalidBitRateRejected) {
  auto ctrl = AdmissionController::Create(DirectConfig(1 * kGB));
  ASSERT_TRUE(ctrl.ok());
  EXPECT_FALSE(ctrl.value().TryAdmit(0).admitted);
  EXPECT_FALSE(ctrl.value().TryAdmit(-5).admitted);
}

TEST(AdmissionTest, CreateValidatesConfig) {
  AdmissionConfig config;  // no latency function
  config.dram_budget = 1 * kGB;
  EXPECT_FALSE(AdmissionController::Create(config).ok());
  AdmissionConfig bad_buffer = DirectConfig(1 * kGB);
  bad_buffer.buffer_k = 2;  // but no mems profile
  EXPECT_FALSE(AdmissionController::Create(bad_buffer).ok());
}

}  // namespace
}  // namespace memstream::server
