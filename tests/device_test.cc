#include "device/device.h"

#include <gtest/gtest.h>

namespace memstream::device {
namespace {

TEST(EffectiveThroughputTest, ZeroSizeZeroThroughput) {
  EXPECT_DOUBLE_EQ(
      EffectiveThroughput(0, 1 * kMillisecond, 300 * kMBps), 0.0);
}

TEST(EffectiveThroughputTest, ZeroLatencyReachesMediaRate) {
  EXPECT_DOUBLE_EQ(EffectiveThroughput(1 * kMB, 0, 300 * kMBps),
                   300 * kMBps);
}

TEST(EffectiveThroughputTest, MonotoneInIoSize) {
  double prev = 0;
  for (Bytes io = 4 * kKB; io <= 64 * kMB; io *= 2) {
    const double t =
        EffectiveThroughput(io, 4.3 * kMillisecond, 300 * kMBps);
    EXPECT_GT(t, prev);
    EXPECT_LT(t, 300 * kMBps);
    prev = t;
  }
}

TEST(EffectiveThroughputTest, HalfRateAtLatencyEqualsTransferTime) {
  // When the positioning time equals the transfer time, effective
  // throughput is exactly half the media rate.
  const Bytes io = 300 * kMBps * 4.3 * kMillisecond;  // transfer = 4.3 ms
  EXPECT_NEAR(EffectiveThroughput(io, 4.3 * kMillisecond, 300 * kMBps),
              150 * kMBps, 1e-6);
}

TEST(IoSizeForThroughputTest, RoundTripsWithEffectiveThroughput) {
  const Seconds latency = 0.86 * kMillisecond;
  const BytesPerSecond rate = 320 * kMBps;
  for (double frac : {0.1, 0.5, 0.9, 0.99}) {
    auto io = IoSizeForThroughput(frac * rate, latency, rate);
    ASSERT_TRUE(io.ok()) << frac;
    EXPECT_NEAR(EffectiveThroughput(io.value(), latency, rate),
                frac * rate, 1e-3)
        << frac;
  }
}

TEST(IoSizeForThroughputTest, TargetAtOrAboveRateInfeasible) {
  EXPECT_EQ(IoSizeForThroughput(300 * kMBps, 1e-3, 300 * kMBps)
                .status()
                .code(),
            StatusCode::kInfeasible);
  EXPECT_FALSE(IoSizeForThroughput(400 * kMBps, 1e-3, 300 * kMBps).ok());
}

TEST(IoSizeForThroughputTest, NonPositiveTargetRejected) {
  EXPECT_EQ(IoSizeForThroughput(0, 1e-3, 300 * kMBps).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(IoSizeForThroughputTest, Fig2HeadlineRatio) {
  // Fig. 2's punchline: for 90% utilization the disk needs ~5x larger
  // IOs than the MEMS device (latency ratio x rate ratio).
  auto disk = IoSizeForThroughput(0.9 * 300 * kMBps, 4.3 * kMillisecond,
                                  300 * kMBps);
  auto mems = IoSizeForThroughput(0.9 * 320 * kMBps, 0.86 * kMillisecond,
                                  320 * kMBps);
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE(mems.ok());
  EXPECT_NEAR(disk.value() / mems.value(), 4.69, 0.05);
}

}  // namespace
}  // namespace memstream::device
