#include "common/logging.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace memstream {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = GetLogLevel(); }
  void TearDown() override {
    SetLogLevel(previous_);
    SetLogSink(nullptr);
  }
  LogLevel previous_ = LogLevel::kInfo;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST_F(LoggingTest, StreamMacroComposesMessage) {
  SetLogLevel(LogLevel::kError);  // suppress actual output
  // Must compile and run without side effects at suppressed levels.
  MEMSTREAM_LOG(kInfo) << "admitted " << 42 << " streams at "
                       << 1.5 << " MB/s";
  SUCCEED();
}

TEST_F(LoggingTest, CapturesStderrAtEnabledLevel) {
  SetLogLevel(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  MEMSTREAM_LOG(kWarning) << "cycle overrun";
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("WARN"), std::string::npos);
  EXPECT_NE(out.find("cycle overrun"), std::string::npos);
}

TEST_F(LoggingTest, DefaultSinkPrefixesWallClockTimestamp) {
  SetLogLevel(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  MEMSTREAM_LOG(kInfo) << "stamped";
  const std::string out = ::testing::internal::GetCapturedStderr();
  // "[YYYY-MM-DD HH:MM:SS.mmm] [INFO] stamped"
  ASSERT_GE(out.size(), 26u);
  EXPECT_EQ(out[0], '[');
  EXPECT_EQ(out[5], '-');
  EXPECT_EQ(out[8], '-');
  EXPECT_EQ(out[11], ' ');
  EXPECT_EQ(out[14], ':');
  EXPECT_EQ(out[17], ':');
  EXPECT_EQ(out[20], '.');
  EXPECT_EQ(out[24], ']');
  EXPECT_NE(out.find("[INFO] stamped"), std::string::npos);
}

TEST_F(LoggingTest, InjectedSinkReceivesLevelAndRawMessage) {
  SetLogLevel(LogLevel::kDebug);
  std::vector<std::pair<LogLevel, std::string>> captured;
  SetLogSink([&captured](LogLevel level, const std::string& message) {
    captured.emplace_back(level, message);
  });
  ::testing::internal::CaptureStderr();
  MEMSTREAM_LOG(kWarning) << "slack " << -3 << " ms";
  MEMSTREAM_LOG(kError) << "underflow";
  const std::string stderr_out = ::testing::internal::GetCapturedStderr();
  EXPECT_TRUE(stderr_out.empty());  // sink replaces stderr entirely
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::kWarning);
  EXPECT_EQ(captured[0].second, "slack -3 ms");  // undecorated
  EXPECT_EQ(captured[1].first, LogLevel::kError);
  EXPECT_EQ(captured[1].second, "underflow");
}

TEST_F(LoggingTest, InjectedSinkStillRespectsThreshold) {
  SetLogLevel(LogLevel::kError);
  int calls = 0;
  SetLogSink([&calls](LogLevel, const std::string&) { ++calls; });
  MEMSTREAM_LOG(kDebug) << "dropped";
  MEMSTREAM_LOG(kWarning) << "dropped too";
  EXPECT_EQ(calls, 0);
  MEMSTREAM_LOG(kError) << "kept";
  EXPECT_EQ(calls, 1);
}

TEST_F(LoggingTest, NullSinkRestoresStderr) {
  SetLogLevel(LogLevel::kDebug);
  SetLogSink([](LogLevel, const std::string&) {});
  SetLogSink(nullptr);
  ::testing::internal::CaptureStderr();
  MEMSTREAM_LOG(kWarning) << "back on stderr";
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("back on stderr"), std::string::npos);
}

TEST_F(LoggingTest, LevelNamesAreStable) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarning), "WARN");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "ERROR");
}

TEST_F(LoggingTest, SuppressedBelowThreshold) {
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  MEMSTREAM_LOG(kDebug) << "invisible";
  MEMSTREAM_LOG(kInfo) << "also invisible";
  EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

}  // namespace
}  // namespace memstream
