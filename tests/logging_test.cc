#include "common/logging.h"

#include <gtest/gtest.h>

namespace memstream {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(previous_); }
  LogLevel previous_ = LogLevel::kInfo;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST_F(LoggingTest, StreamMacroComposesMessage) {
  SetLogLevel(LogLevel::kError);  // suppress actual output
  // Must compile and run without side effects at suppressed levels.
  MEMSTREAM_LOG(kInfo) << "admitted " << 42 << " streams at "
                       << 1.5 << " MB/s";
  SUCCEED();
}

TEST_F(LoggingTest, CapturesStderrAtEnabledLevel) {
  SetLogLevel(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  MEMSTREAM_LOG(kWarning) << "cycle overrun";
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("WARN"), std::string::npos);
  EXPECT_NE(out.find("cycle overrun"), std::string::npos);
}

TEST_F(LoggingTest, SuppressedBelowThreshold) {
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  MEMSTREAM_LOG(kDebug) << "invisible";
  MEMSTREAM_LOG(kInfo) << "also invisible";
  EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

}  // namespace
}  // namespace memstream
