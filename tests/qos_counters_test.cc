// The shared QosCounters struct replaced four copy-pasted report fields;
// these tests pin the single accounting path every server now goes
// through: session absorption, farm/facade merging, the auditor slot,
// and the pause semantics degradation relies on (shed time is not
// jitter).

#include "server/qos_counters.h"

#include <gtest/gtest.h>

#include "server/stream_session.h"

namespace memstream::server {
namespace {

TEST(QosCountersTest, AbsorbPlaybackFoldsUnderflowTallies) {
  StreamSession session(1, 100);  // 100 B/s
  session.Deposit(0, 50);
  session.StartPlayback(0);
  session.LevelAt(2.0);  // dry from t=0.5; 1.5s of underflow so far

  QosCounters qos;
  qos.AbsorbPlayback(session);
  EXPECT_EQ(qos.underflow_events, 1);
  EXPECT_DOUBLE_EQ(qos.underflow_time, 1.5);
  EXPECT_FALSE(qos.clean());
}

TEST(QosCountersTest, AbsorbRecordingFoldsOverflowTallies) {
  RecordingSession session(2, 100, 100);  // 1s of staging capacity
  session.StartRecording(0);
  session.LevelAt(3.0);  // over capacity from t=1: 2s over

  QosCounters qos;
  qos.AbsorbRecording(session);
  EXPECT_EQ(qos.overflow_events, 1);
  EXPECT_DOUBLE_EQ(qos.overflow_time, 2.0);
  EXPECT_FALSE(qos.clean());
}

TEST(QosCountersTest, MergeAggregatesEveryField) {
  QosCounters a;
  a.underflow_events = 1;
  a.underflow_time = 0.5;
  a.violations = 2;
  QosCounters b;
  b.underflow_events = 2;
  b.underflow_time = 1.5;
  b.overflow_events = 1;
  b.overflow_time = 0.25;
  b.violations = 3;
  a.Merge(b);
  EXPECT_EQ(a.underflow_events, 3);
  EXPECT_DOUBLE_EQ(a.underflow_time, 2.0);
  EXPECT_EQ(a.overflow_events, 1);
  EXPECT_DOUBLE_EQ(a.overflow_time, 0.25);
  EXPECT_EQ(a.violations, 5);
}

TEST(QosCountersTest, CleanRequiresZeroEverywhere) {
  QosCounters qos;
  EXPECT_TRUE(qos.clean());
  qos.violations = 1;
  EXPECT_FALSE(qos.clean());
  qos.violations = 0;
  qos.overflow_events = 1;
  EXPECT_FALSE(qos.clean());
}

TEST(QosCountersTest, PausedStreamsAccrueNoUnderflow) {
  // Degradation sheds a stream by pausing its session: the viewer
  // rebuffers, so the shed window must not count as jitter.
  StreamSession session(3, 100);
  session.Deposit(0, 100);
  session.StartPlayback(0);
  session.PausePlayback(0.5);  // 50 B left, still clean
  session.LevelAt(20.0);       // a long shed window

  QosCounters qos;
  qos.AbsorbPlayback(session);
  EXPECT_EQ(qos.underflow_events, 0);
  EXPECT_DOUBLE_EQ(qos.underflow_time, 0.0);
  EXPECT_TRUE(qos.clean());

  // Re-admission resumes the clock; tallies start from the live state.
  session.Deposit(20.0, 100);
  session.StartPlayback(20.0);
  session.LevelAt(21.0);
  qos = QosCounters();
  qos.AbsorbPlayback(session);
  EXPECT_EQ(qos.underflow_events, 0);
}

TEST(QosCountersTest, PauseEndsAnOpenDryExcursion) {
  // A stream that is dry when it gets shed: the event was already
  // counted once; pausing must close the excursion instead of letting
  // the shed window inflate underflow_time.
  StreamSession session(4, 100);
  session.Deposit(0, 50);
  session.StartPlayback(0);
  session.LevelAt(1.0);  // dry since t=0.5
  session.PausePlayback(1.0);
  session.LevelAt(30.0);

  QosCounters qos;
  qos.AbsorbPlayback(session);
  EXPECT_EQ(qos.underflow_events, 1);
  EXPECT_DOUBLE_EQ(qos.underflow_time, 0.5);
}

}  // namespace
}  // namespace memstream::server
