#include "server/timecycle_server.h"

#include <gtest/gtest.h>

#include "device/device_catalog.h"
#include "model/profiles.h"
#include "model/timecycle.h"

namespace memstream::server {
namespace {

// Uniform-rate variant: the analytical model (like the paper) uses a
// single R_disk, so the executable validation must not be polluted by
// zoned-rate variation (the facade's conservative zoned sizing is tested
// in media_server_test).
device::DiskDrive Future() {
  device::DiskParameters p = device::FutureDisk2007();
  p.inner_rate = p.outer_rate;
  auto disk = device::DiskDrive::Create(p);
  EXPECT_TRUE(disk.ok());
  return std::move(disk).value();
}

std::vector<StreamSpec> Spread(std::int64_t n, BytesPerSecond bit_rate,
                               Bytes capacity, Bytes min_extent) {
  std::vector<StreamSpec> streams;
  const Bytes stride = capacity * 0.9 / static_cast<double>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    StreamSpec s;
    s.id = i;
    s.bit_rate = bit_rate;
    s.disk_offset = stride * static_cast<double>(i);
    s.extent = std::max(min_extent, stride);
    streams.push_back(s);
  }
  return streams;
}

// The central validation: buffers sized by Theorem 1 (with the elevator
// latency) produce a schedule with no cycle overruns and no underflow.
TEST(DirectServerTest, AnalyticSizingYieldsJitterFreePlayback) {
  device::DiskDrive disk = Future();
  const std::int64_t n = 50;
  const BytesPerSecond b = 1 * kMBps;
  auto cycle = model::IoCycleLength(n, b, model::DiskProfile(disk, n));
  ASSERT_TRUE(cycle.ok());

  DirectServerConfig config;
  config.cycle = cycle.value();
  auto server = DirectStreamingServer::Create(
      &disk, Spread(n, b, disk.Capacity(), 2 * b * cycle.value()), config);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  ASSERT_TRUE(server.value().Run(60.0).ok());

  const ServerReport& report = server.value().report();
  EXPECT_GT(report.cycles, 50);
  EXPECT_EQ(report.cycle_overruns, 0);
  EXPECT_EQ(report.qos.underflow_events, 0);
  EXPECT_DOUBLE_EQ(report.qos.underflow_time, 0.0);
  // Double-buffered operation needs at most two cycles of data resident.
  EXPECT_LE(report.peak_buffer_demand,
            2.0 * static_cast<double>(n) * b * cycle.value() * 1.01);
}

// The converse: a cycle much shorter than Theorem 1's minimum cannot be
// sustained — the disk overruns and streams underflow.
TEST(DirectServerTest, UndersizedCycleCausesOverrunsAndUnderflow) {
  device::DiskDrive disk = Future();
  const std::int64_t n = 50;
  const BytesPerSecond b = 1 * kMBps;
  auto cycle = model::IoCycleLength(n, b, model::DiskProfile(disk, n));
  ASSERT_TRUE(cycle.ok());

  DirectServerConfig config;
  config.cycle = cycle.value() * 0.3;  // far below the feasible minimum
  auto server = DirectStreamingServer::Create(
      &disk, Spread(n, b, disk.Capacity(), 2 * b * cycle.value()), config);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.value().Run(60.0).ok());

  const ServerReport& report = server.value().report();
  EXPECT_GT(report.cycle_overruns, 0);
  EXPECT_GT(report.qos.underflow_events, 0);
  EXPECT_GT(report.qos.underflow_time, 0.0);
}

TEST(DirectServerTest, UtilizationNearBandwidthShare) {
  device::DiskDrive disk = Future();
  const std::int64_t n = 100;
  const BytesPerSecond b = 1 * kMBps;  // 100/300 of the disk
  auto cycle = model::IoCycleLength(n, b, model::DiskProfile(disk, n));
  ASSERT_TRUE(cycle.ok());
  DirectServerConfig config;
  config.cycle = cycle.value();
  auto server = DirectStreamingServer::Create(
      &disk, Spread(n, b, disk.Capacity(), 2 * b * cycle.value()), config);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.value().Run(30.0).ok());
  // Transfer share alone is ~1/3; positioning raises it, zones too.
  EXPECT_GT(server.value().report().device_utilization, 0.30);
  EXPECT_LT(server.value().report().device_utilization, 1.0);
}

TEST(DirectServerTest, EveryStreamReceivesData) {
  device::DiskDrive disk = Future();
  const std::int64_t n = 10;
  const BytesPerSecond b = 1 * kMBps;
  auto cycle = model::IoCycleLength(n, b, model::DiskProfile(disk, n));
  ASSERT_TRUE(cycle.ok());
  DirectServerConfig config;
  config.cycle = cycle.value();
  auto server = DirectStreamingServer::Create(
      &disk, Spread(n, b, disk.Capacity(), 2 * b * cycle.value()), config);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.value().Run(10.0).ok());
  for (std::size_t i = 0; i < server.value().num_streams(); ++i) {
    EXPECT_GT(server.value().session(i).total_deposited(), 0.0);
  }
}

TEST(DirectServerTest, TraceRecordsCyclesAndIos) {
  device::DiskDrive disk = Future();
  sim::TraceLog trace;
  DirectServerConfig config;
  config.cycle = 0.5;
  auto server = DirectStreamingServer::Create(
      &disk, Spread(5, 100 * kKBps, disk.Capacity(), 1 * kMB), config,
      &trace);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.value().Run(5.0).ok());
  EXPECT_GE(trace.Count(sim::TraceKind::kCycleStart), 9);
  EXPECT_GE(trace.Count(sim::TraceKind::kIoCompleted), 45);
}

TEST(DirectServerTest, RunTwiceRejected) {
  device::DiskDrive disk = Future();
  DirectServerConfig config;
  config.cycle = 0.5;
  auto server = DirectStreamingServer::Create(
      &disk, Spread(2, 100 * kKBps, disk.Capacity(), 1 * kMB), config);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.value().Run(1.0).ok());
  EXPECT_EQ(server.value().Run(1.0).code(),
            StatusCode::kFailedPrecondition);
}

// §3.1.2: spare bandwidth carries best-effort traffic without putting
// the real-time streams at risk.
TEST(DirectServerTest, BestEffortFillsSlackWithoutJitter) {
  device::DiskDrive disk = Future();
  const std::int64_t n = 20;  // light load: plenty of slack
  const BytesPerSecond b = 1 * kMBps;
  auto cycle = model::IoCycleLength(n, b, model::DiskProfile(disk, n));
  ASSERT_TRUE(cycle.ok());

  DirectServerConfig config;
  // A relaxed cycle (2x the minimum) leaves slack wider than the
  // worst-case best-effort IO, so the filler can actually run.
  config.cycle = cycle.value() * 2;
  config.best_effort_io = 256 * kKB;
  auto server = DirectStreamingServer::Create(
      &disk, Spread(n, b, disk.Capacity(), 2 * b * config.cycle), config);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.value().Run(30.0).ok());

  const ServerReport& report = server.value().report();
  EXPECT_GT(report.best_effort_ios, 0);
  EXPECT_GT(report.best_effort_bytes, 0.0);
  // The slack filler must not disturb the real-time schedule.
  EXPECT_EQ(report.cycle_overruns, 0);
  EXPECT_EQ(report.qos.underflow_events, 0);
  // It should push utilization well above the real-time-only level.
  EXPECT_GT(report.device_utilization, 0.8);
}

TEST(DirectServerTest, BestEffortStarvedAtSaturation) {
  device::DiskDrive disk = Future();
  const std::int64_t n = 250;  // near the 299-stream bandwidth bound
  const BytesPerSecond b = 1 * kMBps;
  auto cycle = model::IoCycleLength(n, b, model::DiskProfile(disk, n));
  ASSERT_TRUE(cycle.ok());

  DirectServerConfig config;
  config.cycle = cycle.value();
  config.best_effort_io = 256 * kKB;
  auto server = DirectStreamingServer::Create(
      &disk, Spread(n, b, disk.Capacity(), 2 * b * cycle.value()), config);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.value().Run(30.0).ok());

  const ServerReport& report = server.value().report();
  EXPECT_EQ(report.qos.underflow_events, 0);
  // Real-time traffic claims ~90% of the cycle; best-effort gets scraps
  // relative to the real-time volume.
  EXPECT_LT(report.best_effort_bytes,
            0.2 * static_cast<double>(n) * b * 30.0);
}

TEST(DirectServerTest, BestEffortDisabledByDefault) {
  device::DiskDrive disk = Future();
  DirectServerConfig config;
  config.cycle = 0.5;
  auto server = DirectStreamingServer::Create(
      &disk, Spread(5, 100 * kKBps, disk.Capacity(), 1 * kMB), config);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.value().Run(5.0).ok());
  EXPECT_EQ(server.value().report().best_effort_ios, 0);
}

// The analytic model works with the average bit-rate; the executable
// server handles a heterogeneous mix directly.
TEST(DirectServerTest, MixedBitRatePopulationJitterFree) {
  device::DiskDrive disk = Future();
  // 10 DVD + 30 DivX + 60 mp3: average (10*1000 + 30*100 + 60*10) / 100
  // = 136 KB/s.
  std::vector<StreamSpec> streams;
  const Bytes stride = disk.Capacity() * 0.9 / 100;
  for (std::int64_t i = 0; i < 100; ++i) {
    BytesPerSecond rate = i < 10 ? 1 * kMBps
                          : i < 40 ? 100 * kKBps
                                   : 10 * kKBps;
    streams.push_back({i, rate, stride * static_cast<double>(i),
                       std::max(stride, 64 * kMB)});
  }
  const BytesPerSecond avg = 136 * kKBps;
  auto cycle = model::IoCycleLength(100, avg, model::DiskProfile(disk, 100));
  ASSERT_TRUE(cycle.ok());
  DirectServerConfig config;
  config.cycle = cycle.value();
  auto server = DirectStreamingServer::Create(&disk, streams, config);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  ASSERT_TRUE(server.value().Run(30.0).ok());
  EXPECT_EQ(server.value().report().qos.underflow_events, 0);
  EXPECT_EQ(server.value().report().cycle_overruns, 0);
}

// §3.1's write-stream extension: recording streams drain encoder staging
// buffers; with the Theorem 1 cycle the staging never overflows.
TEST(DirectServerTest, MixedReadWriteWorkloadJitterAndOverflowFree) {
  device::DiskDrive disk = Future();
  const std::int64_t n = 40;
  const BytesPerSecond b = 1 * kMBps;
  auto cycle = model::IoCycleLength(n, b, model::DiskProfile(disk, n));
  ASSERT_TRUE(cycle.ok());

  DirectServerConfig config;
  config.cycle = cycle.value();
  auto streams = Spread(n, b, disk.Capacity(), 2 * b * cycle.value());
  for (std::size_t i = 0; i < streams.size(); i += 2) {
    streams[i].direction = StreamDirection::kWrite;
  }
  auto server = DirectStreamingServer::Create(&disk, streams, config);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  ASSERT_TRUE(server.value().Run(60.0).ok());

  const ServerReport& report = server.value().report();
  EXPECT_EQ(report.cycle_overruns, 0);
  EXPECT_EQ(report.qos.underflow_events, 0);
  EXPECT_EQ(report.qos.overflow_events, 0);
  EXPECT_DOUBLE_EQ(report.qos.overflow_time, 0.0);
  ASSERT_EQ(server.value().record_sessions().size(), 20u);
  ASSERT_EQ(server.value().play_sessions().size(), 20u);
  for (const auto& recording : server.value().record_sessions()) {
    // Every recorder captured roughly the whole horizon's data.
    EXPECT_GT(recording.total_drained(), b * 60.0 * 0.9);
    // Staging stays within the double-buffer bound.
    EXPECT_LE(recording.peak_level(), 2.0 * b * cycle.value() * 1.01);
  }
}

TEST(DirectServerTest, UndersizedCycleOverflowsRecorders) {
  device::DiskDrive disk = Future();
  const std::int64_t n = 40;
  const BytesPerSecond b = 1 * kMBps;
  auto cycle = model::IoCycleLength(n, b, model::DiskProfile(disk, n));
  ASSERT_TRUE(cycle.ok());

  DirectServerConfig config;
  config.cycle = cycle.value() * 0.3;
  auto streams = Spread(n, b, disk.Capacity(), 2 * b * cycle.value());
  for (auto& s : streams) s.direction = StreamDirection::kWrite;
  auto server = DirectStreamingServer::Create(&disk, streams, config);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.value().Run(60.0).ok());
  EXPECT_GT(server.value().report().qos.overflow_events, 0);
  EXPECT_GT(server.value().report().qos.overflow_time, 0.0);
}

TEST(DirectServerTest, CreateValidatesInputs) {
  device::DiskDrive disk = Future();
  DirectServerConfig config;
  config.cycle = 1.0;
  EXPECT_FALSE(
      DirectStreamingServer::Create(nullptr, Spread(1, 1 * kMBps, 1 * kGB, 1 * kMB),
                                    config)
          .ok());
  EXPECT_FALSE(DirectStreamingServer::Create(&disk, {}, config).ok());
  // Extent smaller than one IO.
  std::vector<StreamSpec> tiny{{0, 1 * kMBps, 0, 0.5 * kMB}};
  EXPECT_FALSE(DirectStreamingServer::Create(&disk, tiny, config).ok());
}

}  // namespace
}  // namespace memstream::server
