#include "workload/request_gen.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "workload/popularity.h"

namespace memstream::workload {
namespace {

Catalog TestCatalog() {
  auto catalog = Catalog::Uniform(100, 1 * kMBps, 3600);
  EXPECT_TRUE(catalog.ok());
  return std::move(catalog).value();
}

TEST(RequestGenTest, ArrivalsSortedWithinHorizon) {
  Catalog catalog = TestCatalog();
  Rng rng(5);
  auto sampler = TwoClassSampler::Create({0.1, 0.9}, catalog.size());
  ASSERT_TRUE(sampler.ok());
  auto requests = GenerateRequests(
      catalog,
      [&](Rng& r) { return sampler.value().Sample(r); }, 1.0, 1000.0, rng);
  ASSERT_TRUE(requests.ok());
  EXPECT_FALSE(requests.value().empty());
  Seconds prev = 0;
  for (const auto& req : requests.value()) {
    EXPECT_GE(req.arrival, prev);
    EXPECT_LT(req.arrival, 1000.0);
    EXPECT_GE(req.title_id, 0);
    EXPECT_LT(req.title_id, catalog.size());
    EXPECT_DOUBLE_EQ(req.duration, 3600.0);
    prev = req.arrival;
  }
}

TEST(RequestGenTest, PoissonCountNearRateTimesHorizon) {
  Catalog catalog = TestCatalog();
  Rng rng(11);
  auto requests = GenerateRequests(
      catalog, [](Rng& r) { return r.NextInt(0, 99); }, 2.0, 5000.0, rng);
  ASSERT_TRUE(requests.ok());
  // Poisson(10000): stddev 100; allow 5 sigma.
  EXPECT_NEAR(static_cast<double>(requests.value().size()), 10000, 500);
}

TEST(RequestGenTest, MeasuredHitRateMatchesEq11) {
  // End-to-end cross-check of Eq. 11 against a sampled trace: cache the
  // top 1% of titles under a 10:90 popularity -> h = 0.09.
  Catalog catalog = TestCatalog();  // 100 titles
  auto sampler = TwoClassSampler::Create({0.1, 0.9}, catalog.size());
  ASSERT_TRUE(sampler.ok());
  Rng rng(23);
  auto requests = GenerateRequests(
      catalog, [&](Rng& r) { return sampler.value().Sample(r); }, 20.0,
      5000.0, rng);
  ASSERT_TRUE(requests.ok());

  // One cached title = 1% of the catalog.
  const std::vector<std::int64_t> cached{0};
  const auto stats = MeasureHitRate(requests.value(), cached);
  auto analytic = model::HitRate({0.1, 0.9}, 0.01);
  ASSERT_TRUE(analytic.ok());
  EXPECT_NEAR(stats.hit_rate, analytic.value(), 0.01);
}

TEST(RequestGenTest, HitRateZeroWithEmptyCache) {
  Catalog catalog = TestCatalog();
  Rng rng(2);
  auto requests = GenerateRequests(
      catalog, [](Rng& r) { return r.NextInt(0, 99); }, 1.0, 100.0, rng);
  ASSERT_TRUE(requests.ok());
  EXPECT_DOUBLE_EQ(MeasureHitRate(requests.value(), {}).hit_rate, 0.0);
}

TEST(RequestGenTest, InvalidInputsRejected) {
  Catalog catalog = TestCatalog();
  Rng rng(1);
  EXPECT_FALSE(GenerateRequests(catalog, nullptr, 1.0, 10.0, rng).ok());
  EXPECT_FALSE(GenerateRequests(
                   catalog, [](Rng& r) { return r.NextInt(0, 99); }, 0.0,
                   10.0, rng)
                   .ok());
  EXPECT_FALSE(GenerateRequests(
                   catalog, [](Rng& r) { return r.NextInt(0, 99); }, 1.0,
                   0.0, rng)
                   .ok());
  // Sampler returning out-of-range ids is an error.
  EXPECT_FALSE(GenerateRequests(
                   catalog, [](Rng&) { return 1000; }, 1.0, 10.0, rng)
                   .ok());
}

}  // namespace
}  // namespace memstream::workload
