#include "model/cost.h"

#include <gtest/gtest.h>

namespace memstream::model {
namespace {

CostInputs Prices2007() {
  CostInputs prices;
  prices.dram_per_byte = 20.0 / kGB;
  prices.mems_per_byte = 1.0 / kGB;
  prices.mems_capacity = 10 * kGB;
  return prices;
}

TEST(CostTest, Eq1WithoutMems) {
  // 1000 streams x 1 MB buffers at $20/GB = $20.
  EXPECT_NEAR(CostWithoutMems(1000, 1 * kMB, Prices2007()), 20.0, 1e-9);
}

TEST(CostTest, Eq2PerDeviceChargesWholeDevices) {
  // 2 devices at $1/GB x 10 GB = $20 even if barely used, plus DRAM.
  const Dollars cost =
      CostWithMemsBufferPerDevice(1000, 2, 0.1 * kMB, Prices2007());
  EXPECT_NEAR(cost, 20.0 + 1000 * 0.1 * kMB * 20.0 / kGB, 1e-9);
}

TEST(CostTest, PerByteChargesOnlyUsage) {
  const Dollars cost =
      CostWithMemsBufferPerByte(1000, 5 * kGB, 0.1 * kMB, Prices2007());
  EXPECT_NEAR(cost, 5.0 + 2.0, 1e-9);
}

TEST(CostTest, Eq9CacheSplitsDramByHitRate) {
  // h = 0.8: 80% of streams buffered at the (small) cache sizing, 20% at
  // the (large) disk sizing.
  const Dollars cost = CostWithMemsCache(100, 1, 0.8, 1 * kMB, 10 * kMB,
                                         Prices2007());
  const Dollars expected = 10.0 +                                  // device
                           0.8 * 100 * 20.0 / kGB * 1 * kMB +      // cache
                           0.2 * 100 * 20.0 / kGB * 10 * kMB;      // disk
  EXPECT_NEAR(cost, expected, 1e-9);
}

TEST(CostTest, ZeroHitRateDegeneratesToDiskPlusDevice) {
  const Dollars cache =
      CostWithMemsCache(100, 1, 0.0, 1 * kMB, 10 * kMB, Prices2007());
  const Dollars direct = CostWithoutMems(100, 10 * kMB, Prices2007());
  EXPECT_NEAR(cache, direct + 10.0, 1e-9);
}

TEST(PercentReductionTest, Basics) {
  EXPECT_DOUBLE_EQ(PercentReduction(100, 20), 80.0);
  EXPECT_DOUBLE_EQ(PercentReduction(100, 100), 0.0);
  EXPECT_DOUBLE_EQ(PercentReduction(100, 130), -30.0);
  EXPECT_DOUBLE_EQ(PercentReduction(0, 10), 0.0);
}

TEST(CostTest, MemsBufferPaysOffForLowBitRates) {
  // The cost inversion at the heart of the paper: replacing most of a
  // large DRAM buffer with 20x-cheaper MEMS saves money as long as the
  // MEMS sizing is not much larger than the DRAM it displaces.
  const CostInputs prices = Prices2007();
  // Without: 9000 streams x 0.23 MB (mp3-scale buffers) ~ $41.
  const Dollars without = CostWithoutMems(9000, 0.23 * kMB, prices);
  // With: 2 devices + 9000 x 54 KB of DRAM ~ $20 + $9.7.
  const Dollars with_mems =
      CostWithMemsBufferPerDevice(9000, 2, 54 * kKB, prices);
  EXPECT_LT(with_mems, without);
}

}  // namespace
}  // namespace memstream::model
