#include "model/stream.h"

#include <gtest/gtest.h>

namespace memstream::model {
namespace {

TEST(StreamClassTest, PaperBitRates) {
  EXPECT_DOUBLE_EQ(Mp3().bit_rate, 10 * kKBps);
  EXPECT_DOUBLE_EQ(DivX().bit_rate, 100 * kKBps);
  EXPECT_DOUBLE_EQ(Dvd().bit_rate, 1 * kMBps);
  EXPECT_DOUBLE_EQ(Hdtv().bit_rate, 10 * kMBps);
}

TEST(StreamClassTest, PaperClassesOrderedByRate) {
  const auto classes = PaperStreamClasses();
  ASSERT_EQ(classes.size(), 4u);
  for (std::size_t i = 1; i < classes.size(); ++i) {
    EXPECT_GT(classes[i].bit_rate, classes[i - 1].bit_rate);
    // Each class is 10x the previous (the paper's log-spaced sweep).
    EXPECT_DOUBLE_EQ(classes[i].bit_rate / classes[i - 1].bit_rate, 10.0);
  }
}

TEST(VbrTest, CushionAbsorbsOneCycleOfVariability) {
  VbrProfile vbr{"vbr-dvd", 1 * kMBps, 1.5 * kMBps};
  EXPECT_DOUBLE_EQ(VbrCushion(vbr, 2.0), 1 * kMB);
}

TEST(VbrTest, CbrNeedsNoCushion) {
  VbrProfile cbr{"cbr", 1 * kMBps, 1 * kMBps};
  EXPECT_DOUBLE_EQ(VbrCushion(cbr, 10.0), 0.0);
  VbrProfile weird{"peak-below-mean", 1 * kMBps, 0.5 * kMBps};
  EXPECT_DOUBLE_EQ(VbrCushion(weird, 10.0), 0.0);
}

}  // namespace
}  // namespace memstream::model
