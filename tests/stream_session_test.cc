#include "server/stream_session.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/units.h"
#include "model/stream.h"

namespace memstream::server {
namespace {

TEST(SessionTest, NoConsumptionBeforePlayback) {
  StreamSession s(1, 1 * kMBps);
  s.Deposit(0.0, 5 * kMB);
  EXPECT_DOUBLE_EQ(s.LevelAt(10.0), 5 * kMB);
  EXPECT_EQ(s.underflow_events(), 0);
}

TEST(SessionTest, DrainsAtBitRate) {
  StreamSession s(1, 1 * kMBps);
  s.Deposit(0.0, 5 * kMB);
  s.StartPlayback(0.0);
  EXPECT_DOUBLE_EQ(s.LevelAt(2.0), 3 * kMB);
  EXPECT_DOUBLE_EQ(s.LevelAt(5.0), 0.0);
  EXPECT_EQ(s.underflow_events(), 0);  // hit zero exactly, no stall yet
}

TEST(SessionTest, UnderflowAccountsDryTime) {
  StreamSession s(1, 1 * kMBps);
  s.Deposit(0.0, 2 * kMB);
  s.StartPlayback(0.0);
  // Demand over [0, 5] is 5 MB against 2 MB: dry for 3 seconds.
  EXPECT_DOUBLE_EQ(s.LevelAt(5.0), 0.0);
  EXPECT_EQ(s.underflow_events(), 1);
  EXPECT_DOUBLE_EQ(s.underflow_time(), 3.0);
}

TEST(SessionTest, SingleDryIntervalCountedOnce) {
  StreamSession s(1, 1 * kMBps);
  s.Deposit(0.0, 1 * kMB);
  s.StartPlayback(0.0);
  s.LevelAt(3.0);
  s.LevelAt(4.0);
  s.LevelAt(5.0);
  EXPECT_EQ(s.underflow_events(), 1);
  EXPECT_DOUBLE_EQ(s.underflow_time(), 4.0);
}

TEST(SessionTest, DepositEndsDrySpell) {
  StreamSession s(1, 1 * kMBps);
  s.Deposit(0.0, 1 * kMB);
  s.StartPlayback(0.0);
  s.LevelAt(3.0);                // dry since t=1
  s.Deposit(3.0, 1 * kMB);       // refill
  EXPECT_DOUBLE_EQ(s.LevelAt(3.5), 0.5 * kMB);
  s.LevelAt(6.0);                // dry again since t=4
  EXPECT_EQ(s.underflow_events(), 2);
  EXPECT_DOUBLE_EQ(s.underflow_time(), 2.0 + 2.0);
}

TEST(SessionTest, SteadyStateJustInTimeNeverUnderflows) {
  // Deposits of exactly one second's worth every second.
  StreamSession s(1, 2 * kMBps);
  s.Deposit(0.0, 2 * kMB);
  s.StartPlayback(0.0);
  for (int t = 1; t <= 100; ++t) {
    s.Deposit(static_cast<double>(t), 2 * kMB);
  }
  s.LevelAt(100.0);
  EXPECT_EQ(s.underflow_events(), 0);
  EXPECT_DOUBLE_EQ(s.underflow_time(), 0.0);
  EXPECT_DOUBLE_EQ(s.total_deposited(), 202 * kMB);
}

TEST(SessionTest, PeakLevelTracksMaximum) {
  StreamSession s(1, 1 * kMBps);
  s.Deposit(0.0, 3 * kMB);
  s.StartPlayback(0.0);
  s.Deposit(1.0, 3 * kMB);  // level 2+3 = 5 MB
  s.LevelAt(4.0);
  EXPECT_DOUBLE_EQ(s.peak_level(), 5 * kMB);
}

TEST(SessionTest, TimeNeverRunsBackwards) {
  StreamSession s(1, 1 * kMBps);
  s.Deposit(5.0, 1 * kMB);
  // Stale queries do not disturb the state.
  EXPECT_DOUBLE_EQ(s.LevelAt(3.0), 1 * kMB);
  EXPECT_DOUBLE_EQ(s.LevelAt(5.0), 1 * kMB);
}

// Empirical check of the footnote-1 VBR cushion: a CBR schedule delivers
// S = mean * T per cycle (just-in-time, at cycle boundaries) while the
// consumer alternates whole peak-rate and trough-rate cycles. A
// peak-rate cycle overdraws the buffer by exactly (peak - mean) * T —
// the VbrCushion — so prefilling the cushion keeps the level
// non-negative and omitting it does not.
TEST(SessionTest, VbrCushionIsExactlyThePeakCycleOverdraw) {
  const BytesPerSecond mean = 1 * kMBps;
  const BytesPerSecond peak = 1.5 * kMBps;
  const BytesPerSecond trough = 2 * mean - peak;  // mean preserved
  const Seconds cycle = 2.0;
  const Bytes io = mean * cycle;
  const Bytes cushion =
      model::VbrCushion({"vbr", mean, peak}, cycle);

  auto min_level = [&](Bytes prefill) {
    Bytes level = prefill + io;  // initial fill
    Bytes floor = level;
    for (int c = 0; c < 50; ++c) {
      level -= (c % 2 == 0 ? peak : trough) * cycle;
      floor = std::min(floor, level);
      level += io;  // just-in-time CBR deposit at the cycle boundary
    }
    return floor;
  };

  EXPECT_GE(min_level(cushion), -1e-6);       // cushion suffices...
  EXPECT_LT(min_level(cushion * 0.9), -1e-6); // ...and is tight
  EXPECT_LT(min_level(0), -1e-6);
}

TEST(RecordingTest, FillsAtBitRate) {
  RecordingSession r(1, 2 * kMBps, 100 * kMB);
  r.StartRecording(0.0);
  EXPECT_DOUBLE_EQ(r.LevelAt(3.0), 6 * kMB);
  EXPECT_EQ(r.overflow_events(), 0);
}

TEST(RecordingTest, NoFillBeforeStart) {
  RecordingSession r(1, 2 * kMBps, 100 * kMB);
  EXPECT_DOUBLE_EQ(r.LevelAt(10.0), 0.0);
  r.StartRecording(10.0);
  EXPECT_DOUBLE_EQ(r.LevelAt(11.0), 2 * kMB);
}

TEST(RecordingTest, DrainRemovesAtMostLevel) {
  RecordingSession r(1, 1 * kMBps, 100 * kMB);
  r.StartRecording(0.0);
  EXPECT_DOUBLE_EQ(r.Drain(2.0, 5 * kMB), 2 * kMB);
  EXPECT_DOUBLE_EQ(r.LevelAt(2.0), 0.0);
  EXPECT_DOUBLE_EQ(r.total_drained(), 2 * kMB);
}

TEST(RecordingTest, OverflowAccountsTimeOverCapacity) {
  RecordingSession r(1, 1 * kMBps, 2 * kMB);
  r.StartRecording(0.0);
  // Level crosses 2 MB at t = 2; by t = 5 it has been over for 3 s.
  r.LevelAt(5.0);
  EXPECT_EQ(r.overflow_events(), 1);
  EXPECT_DOUBLE_EQ(r.overflow_time(), 3.0);
  // A big drain ends the overflow spell; a new one counts separately.
  r.Drain(5.0, 5 * kMB);
  r.LevelAt(8.0);  // refills to 3 MB: over since t = 7
  EXPECT_EQ(r.overflow_events(), 2);
  EXPECT_DOUBLE_EQ(r.overflow_time(), 4.0);
}

TEST(RecordingTest, SteadyStateDrainsStayBounded) {
  RecordingSession r(1, 1 * kMBps, 2.2 * kMB);
  r.StartRecording(0.0);
  for (int t = 1; t <= 50; ++t) {
    r.Drain(static_cast<double>(t), 1 * kMB);
  }
  EXPECT_EQ(r.overflow_events(), 0);
  EXPECT_LE(r.peak_level(), 1.1 * kMB);
  EXPECT_DOUBLE_EQ(r.total_drained(), 50 * kMB);
}

}  // namespace
}  // namespace memstream::server
