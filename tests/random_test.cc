#include "common/random.h"

#include <cmath>
#include <map>

#include <gtest/gtest.h>

namespace memstream {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, DoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, IntWithinBoundsAndCoversRange) {
  Rng rng(3);
  std::map<std::int64_t, int> counts;
  for (int i = 0; i < 6000; ++i) {
    const auto v = rng.NextInt(10, 15);
    ASSERT_GE(v, 10);
    ASSERT_LE(v, 15);
    ++counts[v];
  }
  EXPECT_EQ(counts.size(), 6u);
  for (const auto& [value, count] : counts) {
    EXPECT_GT(count, 700) << "value " << value << " undersampled";
  }
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(19);
  const double rate = 4.0;
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(ZipfTest, UniformWhenExponentZero) {
  ZipfDistribution dist(10, 0.0);
  for (std::size_t k = 1; k <= 10; ++k) {
    EXPECT_NEAR(dist.Pmf(k), 0.1, 1e-12);
  }
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution dist(100, 1.0);
  double sum = 0;
  for (std::size_t k = 1; k <= 100; ++k) sum += dist.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, MonotoneDecreasingPmf) {
  ZipfDistribution dist(50, 0.8);
  for (std::size_t k = 2; k <= 50; ++k) {
    EXPECT_LE(dist.Pmf(k), dist.Pmf(k - 1) + 1e-15);
  }
}

TEST(ZipfTest, SampleFrequenciesMatchPmf) {
  ZipfDistribution dist(20, 1.0);
  Rng rng(29);
  std::vector<int> counts(21, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[dist.Sample(rng)];
  for (std::size_t k = 1; k <= 20; ++k) {
    const double expected = dist.Pmf(k) * n;
    EXPECT_NEAR(counts[k], expected, 5 * std::sqrt(expected) + 10)
        << "rank " << k;
  }
}

TEST(ZipfTest, SingleItemAlwaysSampled) {
  ZipfDistribution dist(1, 2.0);
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(dist.Sample(rng), 1u);
}

}  // namespace
}  // namespace memstream
