// Unit tests of the online SLO / error-budget monitor: attainment and
// budget arithmetic, the rolling burn-rate window, exhaustion and the
// degraded-health path, the get-or-create monitor, and the JSON and
// gauge exports.

#include "obs/slo.h"

#include <gtest/gtest.h>

#include "obs/json_parser.h"
#include "obs/metrics.h"

namespace memstream::obs {
namespace {

SloSpec Spec(const std::string& name, double objective,
             double window = 60.0) {
  SloSpec spec;
  spec.name = name;
  spec.objective = objective;
  spec.window_seconds = window;
  return spec;
}

TEST(SloTest, FreshSloIsPerfect) {
  Slo slo(Spec("t", 0.999));
  EXPECT_DOUBLE_EQ(slo.attainment(), 1.0);
  EXPECT_DOUBLE_EQ(slo.budget_remaining(), 1.0);
  EXPECT_DOUBLE_EQ(slo.burn_rate(), 0.0);
  EXPECT_FALSE(slo.exhausted());
}

TEST(SloTest, AttainmentAndBudgetArithmetic) {
  // Objective 0.99 -> allowed error rate 0.01. 995 good + 5 bad =
  // error rate 0.005 = half the allowance.
  Slo slo(Spec("t", 0.99));
  slo.Record(1.0, 995, 5);
  EXPECT_DOUBLE_EQ(slo.attainment(), 0.995);
  EXPECT_NEAR(slo.budget_remaining(), 0.5, 1e-9);
  EXPECT_FALSE(slo.exhausted());
  EXPECT_EQ(slo.good(), 995);
  EXPECT_EQ(slo.bad(), 5);
}

TEST(SloTest, ExhaustionWhenErrorRateMeetsAllowance) {
  Slo slo(Spec("t", 0.99));
  slo.Record(1.0, 98, 2);  // double the allowed rate
  EXPECT_TRUE(slo.exhausted());
  EXPECT_LT(slo.budget_remaining(), 0.0);
  Slo under(Spec("t", 0.99));
  under.Record(1.0, 998, 2);  // a fifth of the allowance: budget left
  EXPECT_FALSE(under.exhausted());
  EXPECT_GT(under.budget_remaining(), 0.0);
}

TEST(SloTest, BurnRateUsesOnlyTheRecentWindow) {
  // 32-bucket ring over 32s: 1s per bucket. A bad burst at t=0 must age
  // out of the burn rate once recording advances a full window past it,
  // while the lifetime budget stays spent.
  Slo slo(Spec("t", 0.99, 32.0));
  slo.Record(0.0, 0, 10);
  EXPECT_GT(slo.burn_rate(), 1.0);
  for (int t = 1; t <= 40; ++t) {
    slo.Record(static_cast<double>(t), 10, 0);
  }
  EXPECT_DOUBLE_EQ(slo.burn_rate(), 0.0);
  EXPECT_LT(slo.budget_remaining(), 1.0);
}

TEST(SloTest, ZeroCountRecordIsIgnored) {
  Slo slo(Spec("t", 0.999));
  slo.Record(1.0, 0, 0);
  EXPECT_EQ(slo.good(), 0);
  EXPECT_EQ(slo.bad(), 0);
  SloRecord(nullptr, 1.0, 1, 0);  // null helper is a no-op
}

TEST(SloMonitorTest, AddIsGetOrCreateByName) {
  SloMonitor monitor;
  Slo* a = monitor.Add(Spec("underflow", 0.999));
  Slo* b = monitor.Add(Spec("underflow", 0.5));  // spec unchanged
  EXPECT_EQ(a, b);
  EXPECT_DOUBLE_EQ(a->spec().objective, 0.999);
  EXPECT_EQ(monitor.size(), 1u);
  EXPECT_EQ(monitor.Find("underflow"), a);
  EXPECT_EQ(monitor.Find("absent"), nullptr);
}

TEST(SloMonitorTest, HealthyTurnsFalseWithDetailOnExhaustion) {
  SloMonitor monitor;
  Slo* slo = monitor.Add(StandardUnderflowSlo());
  EXPECT_TRUE(monitor.healthy());
  slo->Record(1.0, 0, 100);
  std::string detail;
  EXPECT_FALSE(monitor.healthy(&detail));
  EXPECT_NE(detail.find("underflow"), std::string::npos) << detail;
  EXPECT_NE(detail.find("exhausted"), std::string::npos) << detail;
}

TEST(SloMonitorTest, StatusJsonIsParseableAndComplete) {
  SloMonitor monitor;
  monitor.Add(StandardUnderflowSlo())->Record(1.0, 99, 1);
  monitor.Add(StandardCycleSlackSlo());
  bool ok = false;
  const JsonValue doc = ParseJson(monitor.StatusJson(), &ok);
  ASSERT_TRUE(ok) << monitor.StatusJson();
  ASSERT_NE(doc.Find("healthy"), nullptr);
  const JsonValue* slos = doc.Find("slos");
  ASSERT_NE(slos, nullptr);
  ASSERT_EQ(slos->array.size(), 2u);
  const JsonValue& u = slos->array[0];
  EXPECT_EQ(u.Str("name"), "underflow");
  EXPECT_DOUBLE_EQ(u.Num("good"), 99);
  EXPECT_DOUBLE_EQ(u.Num("bad"), 1);
  EXPECT_NEAR(u.Num("attainment"), 0.99, 1e-9);
  EXPECT_NE(u.Find("budget_remaining"), nullptr);
  EXPECT_NE(u.Find("burn_rate"), nullptr);
  EXPECT_NE(u.Find("exhausted"), nullptr);
}

TEST(SloMonitorTest, PublishGaugesExportsPerSloTriplet) {
  SloMonitor monitor;
  monitor.Add(StandardUnderflowSlo())->Record(1.0, 999, 1);
  MetricsRegistry metrics;
  monitor.PublishGauges(&metrics);
  EXPECT_NEAR(metrics.gauge("slo.underflow.attainment")->value(), 0.999,
              1e-9);
  EXPECT_NE(metrics.gauge("slo.underflow.budget_remaining"), nullptr);
  EXPECT_NE(metrics.gauge("slo.underflow.burn_rate"), nullptr);
  monitor.PublishGauges(nullptr);  // null sink is a no-op
}

TEST(SloMonitorTest, StandardSpecsAreDistinctAndNamed) {
  SloMonitor monitor;
  monitor.Add(StandardUnderflowSlo());
  monitor.Add(StandardCycleSlackSlo());
  monitor.Add(StandardAdmissionLatencySlo());
  monitor.Add(StandardAvailabilitySlo());
  EXPECT_EQ(monitor.size(), 4u);
  EXPECT_GT(monitor.Find("admission_latency")->spec().threshold, 0.0);
  const auto snapshot = monitor.Snapshot();
  ASSERT_EQ(snapshot.size(), 4u);
  EXPECT_EQ(snapshot[3]->spec().name, "availability");
}

}  // namespace
}  // namespace memstream::obs
