#include "device/disk_scheduler.h"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "device/device_catalog.h"
#include "device/disk.h"

namespace memstream::device {
namespace {

std::vector<IoSpan> Batch(std::initializer_list<std::int64_t> offsets) {
  std::vector<IoSpan> batch;
  for (auto o : offsets) batch.push_back({o, 1 * kMB});
  return batch;
}

bool IsPermutation(const std::vector<std::size_t>& order, std::size_t n) {
  std::vector<std::size_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::size_t> expected(n);
  std::iota(expected.begin(), expected.end(), 0);
  return sorted == expected;
}

TEST(SchedulerTest, FcfsPreservesOrder) {
  const auto batch = Batch({50, 10, 90, 30});
  const auto order = ScheduleOrder(SchedulerPolicy::kFcfs, 0, batch);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(SchedulerTest, SstfGreedyFromHead) {
  const auto batch = Batch({50, 10, 90, 30});
  const auto order = ScheduleOrder(SchedulerPolicy::kSstf, 35, batch);
  // From 35: nearest 30, then 10... wait 30->50 dist 20 vs 30->10 dist 20:
  // tie broken by first found (index order): 50 is index 0.
  ASSERT_TRUE(IsPermutation(order, 4));
  EXPECT_EQ(order[0], 3u);  // offset 30 (distance 5)
}

TEST(SchedulerTest, ScanSweepsUpThenDown) {
  const auto batch = Batch({50, 10, 90, 30});
  const auto order = ScheduleOrder(SchedulerPolicy::kScan, 40, batch);
  ASSERT_TRUE(IsPermutation(order, 4));
  // Up: 50, 90; down: 30, 10.
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 2, 3, 1}));
}

TEST(SchedulerTest, CLookSweepsUpThenWraps) {
  const auto batch = Batch({50, 10, 90, 30});
  const auto order = ScheduleOrder(SchedulerPolicy::kCLook, 40, batch);
  ASSERT_TRUE(IsPermutation(order, 4));
  // Up: 50, 90; wrap to lowest: 10, 30.
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 2, 1, 3}));
}

TEST(SchedulerTest, EmptyBatch) {
  for (auto policy : {SchedulerPolicy::kFcfs, SchedulerPolicy::kSstf,
                      SchedulerPolicy::kScan, SchedulerPolicy::kCLook}) {
    EXPECT_TRUE(ScheduleOrder(policy, 0, {}).empty());
  }
}

TEST(SchedulerTest, AllPoliciesProducePermutations) {
  const auto batch = Batch({5, 3, 9, 1, 7, 7, 2});
  for (auto policy : {SchedulerPolicy::kFcfs, SchedulerPolicy::kSstf,
                      SchedulerPolicy::kScan, SchedulerPolicy::kCLook}) {
    EXPECT_TRUE(IsPermutation(ScheduleOrder(policy, 4, batch), 7))
        << SchedulerPolicyName(policy);
  }
}

TEST(SchedulerTest, ElevatorBeatsFcfsOnRandomBatch) {
  auto disk_result = DiskDrive::Create(FutureDisk2007());
  ASSERT_TRUE(disk_result.ok());
  DiskDrive& disk = disk_result.value();

  Rng rng(99);
  std::vector<IoSpan> batch;
  // Small IOs so positioning (what the scheduler controls) dominates.
  for (int i = 0; i < 64; ++i) {
    batch.push_back(
        {rng.NextInt(0, static_cast<std::int64_t>(900 * kGB)), 4 * kKB});
  }
  disk.Reset();
  auto fcfs = ServiceBatch(disk, SchedulerPolicy::kFcfs, 0, batch, nullptr);
  disk.Reset();
  auto scan = ServiceBatch(disk, SchedulerPolicy::kScan, 0, batch, nullptr);
  ASSERT_TRUE(fcfs.ok());
  ASSERT_TRUE(scan.ok());
  EXPECT_LT(scan.value(), fcfs.value() * 0.6)
      << "elevator should cut positioning time drastically";
}

TEST(SchedulerTest, PolicyNames) {
  EXPECT_STREQ(SchedulerPolicyName(SchedulerPolicy::kScan), "SCAN");
  EXPECT_STREQ(SchedulerPolicyName(SchedulerPolicy::kCLook), "C-LOOK");
}

}  // namespace
}  // namespace memstream::device
