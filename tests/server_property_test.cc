// End-to-end property sweep: for every server mode and a grid of
// workloads, the analytically-sized schedule must execute jitter-free
// and its simulated DRAM demand must stay within the double-buffering
// envelope of the analytic figure. This is the library's strongest
// claim, so it is checked wholesale rather than at hand-picked points.

#include <string>

#include <gtest/gtest.h>

#include "server/media_server.h"

namespace memstream::server {
namespace {

struct SweepPoint {
  ServerMode mode;
  std::int64_t n;
  double bit_rate;
  std::int64_t k;
  model::CachePolicy policy;
};

std::string PointName(const ::testing::TestParamInfo<SweepPoint>& info) {
  const auto& p = info.param;
  std::string name = ServerModeName(p.mode);
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  name += "_n" + std::to_string(p.n) + "_b" +
          std::to_string(static_cast<int>(p.bit_rate / 1000)) + "k" +
          std::to_string(p.k);
  if (p.mode == ServerMode::kMemsCache) {
    name += model::CachePolicyName(p.policy)[0] == 's' ? "_str" : "_rep";
  }
  return name;
}

class ServerSweep : public ::testing::TestWithParam<SweepPoint> {};

INSTANTIATE_TEST_SUITE_P(
    AllModes, ServerSweep,
    ::testing::Values(
        // Direct servers across the bit-rate decades.
        SweepPoint{ServerMode::kDirect, 100, 10e3, 0, {}},
        SweepPoint{ServerMode::kDirect, 100, 100e3, 0, {}},
        SweepPoint{ServerMode::kDirect, 80, 1e6, 0, {}},
        SweepPoint{ServerMode::kDirect, 15, 10e6, 0, {}},
        SweepPoint{ServerMode::kDirect, 200, 1e6, 0, {}},
        // MEMS buffer: bank sizes and loads.
        SweepPoint{ServerMode::kMemsBuffer, 12, 1e6, 1, {}},
        SweepPoint{ServerMode::kMemsBuffer, 60, 1e6, 2, {}},
        SweepPoint{ServerMode::kMemsBuffer, 90, 1e6, 3, {}},
        SweepPoint{ServerMode::kMemsBuffer, 120, 100e3, 2, {}},
        // MEMS cache: both policies, both bit-rates of Fig. 9.
        SweepPoint{ServerMode::kMemsCache, 40, 1e6, 2,
                   model::CachePolicy::kStriped},
        SweepPoint{ServerMode::kMemsCache, 40, 1e6, 2,
                   model::CachePolicy::kReplicated},
        SweepPoint{ServerMode::kMemsCache, 80, 100e3, 4,
                   model::CachePolicy::kStriped},
        SweepPoint{ServerMode::kMemsCache, 80, 100e3, 4,
                   model::CachePolicy::kReplicated}),
    PointName);

TEST_P(ServerSweep, AnalyticSizingExecutesJitterFree) {
  const SweepPoint& p = GetParam();
  MediaServerConfig config;
  config.mode = p.mode;
  config.disk = device::FutureDisk2007();
  config.disk.inner_rate = config.disk.outer_rate;
  config.k = std::max<std::int64_t>(p.k, 1);
  config.cache_policy = p.policy;
  config.cached_fraction_of_streams = 0.5;
  config.num_streams = p.n;
  config.bit_rate = p.bit_rate;
  config.sim_duration = 25;

  auto result = RunMediaServer(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().qos.underflow_events, 0);
  EXPECT_DOUBLE_EQ(result.value().qos.underflow_time, 0.0);
  EXPECT_EQ(result.value().cycle_overruns, 0);
  EXPECT_GT(result.value().ios_completed, 0);
  // Double-buffered execution uses at most ~2x the analytic DRAM (plus
  // pipeline slack in buffer mode).
  EXPECT_LE(result.value().sim_peak_dram,
            2.5 * result.value().analytic_dram_total)
      << "peak " << result.value().sim_peak_dram << " vs analytic "
      << result.value().analytic_dram_total;
}

TEST_P(ServerSweep, DeterministicReplay) {
  const SweepPoint& p = GetParam();
  if (p.mode != ServerMode::kDirect) {
    GTEST_SKIP() << "replay spot-check runs on the direct mode only";
  }
  MediaServerConfig config;
  config.mode = p.mode;
  config.disk = device::FutureDisk2007();
  config.disk.inner_rate = config.disk.outer_rate;
  config.num_streams = p.n;
  config.bit_rate = p.bit_rate;
  config.sim_duration = 10;
  auto a = RunMediaServer(config);
  auto b = RunMediaServer(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().ios_completed, b.value().ios_completed);
  EXPECT_DOUBLE_EQ(a.value().sim_peak_dram, b.value().sim_peak_dram);
  EXPECT_DOUBLE_EQ(a.value().disk_utilization,
                   b.value().disk_utilization);
}

}  // namespace
}  // namespace memstream::server
