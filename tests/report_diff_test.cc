// Tests of the differential run comparison behind `memstream-report
// --diff`: run pairing, per-section deltas (simulated, streams, slo,
// faults, perf), significance thresholds, and the Markdown/HTML
// renderings. Reports are authored through the real RunReport /
// StreamJournal / SloMonitor classes so the JSON round trip is the one
// production writes.

#include "obs/report_merge.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/run_report.h"
#include "obs/slo.h"
#include "obs/stream_journal.h"

namespace memstream::obs {
namespace {

/// One run.report.json with a streams + slo block. `faulted` sheds one
/// stream (re-admitting it) and burns availability budget.
std::string MakeRun(const std::string& title, bool faulted) {
  StreamJournal journal;
  const std::size_t a = journal.EnsureStream(1, 1e6, 2e6, 0.0);
  const std::size_t b = journal.EnsureStream(2, 1e6, 2e6, 0.0);
  journal.RecordIo(a, 0.5, 1000, 1e6);
  journal.RecordIo(b, 0.5, 1000, 1e6);
  if (faulted) {
    journal.MarkShed(b, 2.0);
    journal.MarkReadmitted(b, 8.0);
  }
  journal.Finalize(30.0);

  SloMonitor monitor;
  Slo* availability = monitor.Add(StandardAvailabilitySlo());
  availability->Record(1.0, 100, faulted ? 10 : 0);

  RunReport report;
  report.title = title;
  report.AddConfig("mode", "mems-cache");
  report.AddAnalytic("dram_total_bytes", 4e6);
  report.AddSimulated("underflow_events", faulted ? 6.0 : 0.0);
  report.AddSimulated("ios_completed", 1000.0);
  report.streams = &journal;
  report.slo = &monitor;
  return report.ToJson();
}

const DiffRow* FindRow(const std::vector<DiffRow>& rows,
                       const std::string& key) {
  for (const auto& r : rows) {
    if (r.key == key) return &r;
  }
  return nullptr;
}

TEST(ReportDiffTest, FaultedVsCleanHighlightsAvailabilityAndSheds) {
  ReportBundle clean;
  ASSERT_TRUE(AddReportInput("clean.json", MakeRun("run", false), &clean)
                  .ok());
  ReportBundle faulted;
  ASSERT_TRUE(
      AddReportInput("faulted.json", MakeRun("run", true), &faulted).ok());

  const BundleDiff diff = ComputeBundleDiff(clean, faulted, DiffOptions{},
                                            "clean.json", "faulted.json");
  ASSERT_EQ(diff.pairs.size(), 1u);
  EXPECT_TRUE(diff.only_in_a.empty());
  EXPECT_TRUE(diff.only_in_b.empty());
  const RunPairDiff& pair = diff.pairs[0];

  const DiffRow* shed = FindRow(pair.streams, "shed");
  ASSERT_NE(shed, nullptr);
  EXPECT_DOUBLE_EQ(shed->a, 0);
  EXPECT_DOUBLE_EQ(shed->b, 1);
  EXPECT_DOUBLE_EQ(shed->delta, 1);
  EXPECT_TRUE(shed->significant);
  const DiffRow* readmitted = FindRow(pair.streams, "readmitted");
  ASSERT_NE(readmitted, nullptr);
  EXPECT_DOUBLE_EQ(readmitted->delta, 1);

  const DiffRow* attainment = FindRow(pair.slo, "availability.attainment");
  ASSERT_NE(attainment, nullptr);
  EXPECT_LT(attainment->delta, 0);  // faulted run attains less
  EXPECT_TRUE(attainment->significant);

  const DiffRow* underflows = FindRow(pair.simulated, "underflow_events");
  ASSERT_NE(underflows, nullptr);
  EXPECT_DOUBLE_EQ(underflows->delta, 6);
  EXPECT_TRUE(underflows->significant);

  EXPECT_GT(diff.SignificantCount(), 0u);
}

TEST(ReportDiffTest, IdenticalRunsProduceNoSignificantRows) {
  ReportBundle a;
  ReportBundle b;
  ASSERT_TRUE(AddReportInput("a.json", MakeRun("run", false), &a).ok());
  ASSERT_TRUE(AddReportInput("b.json", MakeRun("run", false), &b).ok());
  const BundleDiff diff =
      ComputeBundleDiff(a, b, DiffOptions{}, "a", "b");
  ASSERT_EQ(diff.pairs.size(), 1u);
  EXPECT_EQ(diff.SignificantCount(), 0u);
  // The rows are still compared, just not flagged.
  EXPECT_FALSE(diff.pairs[0].simulated.empty());
}

TEST(ReportDiffTest, ThresholdsSuppressSmallRelativeChanges) {
  ReportBundle a;
  ReportBundle b;
  RunReport ra;
  ra.title = "run";
  ra.AddSimulated("ios_completed", 1000.0);
  RunReport rb;
  rb.title = "run";
  rb.AddSimulated("ios_completed", 1010.0);  // +1%
  ASSERT_TRUE(AddReportInput("a.json", ra.ToJson(), &a).ok());
  ASSERT_TRUE(AddReportInput("b.json", rb.ToJson(), &b).ok());

  DiffOptions strict;  // default 2% threshold: 1% is noise
  const BundleDiff quiet = ComputeBundleDiff(a, b, strict, "a", "b");
  const DiffRow* row = FindRow(quiet.pairs[0].simulated, "ios_completed");
  ASSERT_NE(row, nullptr);
  EXPECT_FALSE(row->significant);

  DiffOptions loose;
  loose.rel_threshold = 0.005;  // 0.5%: now it matters
  const BundleDiff loud = ComputeBundleDiff(a, b, loose, "a", "b");
  EXPECT_TRUE(FindRow(loud.pairs[0].simulated, "ios_completed")->significant);
}

TEST(ReportDiffTest, UnpairedRunsAndOneSidedKeysAreMarked) {
  ReportBundle a;
  ReportBundle b;
  ASSERT_TRUE(AddReportInput("a1.json", MakeRun("shared", false), &a).ok());
  ASSERT_TRUE(AddReportInput("a2.json", MakeRun("solo A", false), &a).ok());
  ASSERT_TRUE(AddReportInput("b1.json", MakeRun("shared", true), &b).ok());

  const BundleDiff diff =
      ComputeBundleDiff(a, b, DiffOptions{}, "a", "b");
  ASSERT_EQ(diff.pairs.size(), 1u);
  ASSERT_EQ(diff.only_in_a.size(), 1u);
  EXPECT_EQ(diff.only_in_a[0], "solo A");
  EXPECT_TRUE(diff.only_in_b.empty());

  // A key present on one side only is marked rather than zero-diffed.
  RunReport ra;
  ra.title = "keys";
  ra.AddSimulated("only_a_metric", 5.0);
  RunReport rb;
  rb.title = "keys";
  rb.AddSimulated("only_b_metric", 7.0);
  ReportBundle ka;
  ReportBundle kb;
  ASSERT_TRUE(AddReportInput("ka.json", ra.ToJson(), &ka).ok());
  ASSERT_TRUE(AddReportInput("kb.json", rb.ToJson(), &kb).ok());
  const BundleDiff kd = ComputeBundleDiff(ka, kb, DiffOptions{}, "a", "b");
  const DiffRow* only_a = FindRow(kd.pairs[0].simulated, "only_a_metric");
  ASSERT_NE(only_a, nullptr);
  EXPECT_TRUE(only_a->only_a);
  EXPECT_TRUE(only_a->significant);
  const DiffRow* only_b = FindRow(kd.pairs[0].simulated, "only_b_metric");
  ASSERT_NE(only_b, nullptr);
  EXPECT_TRUE(only_b->only_b);
}

TEST(ReportDiffTest, PerfRecordsDiffByBenchKey) {
  const char* sweeps_a =
      R"([{"bench":"sim_validation","tasks":1,"threads":1,
           "wall_seconds":10.0,"events":100,"events_per_sec":10}])";
  const char* sweeps_b =
      R"([{"bench":"sim_validation","tasks":1,"threads":1,
           "wall_seconds":15.0,"events":100,"events_per_sec":6.6}])";
  ReportBundle a;
  ReportBundle b;
  ASSERT_TRUE(AddReportInput("BENCH_sweeps.json", sweeps_a, &a).ok());
  ASSERT_TRUE(AddReportInput("BENCH_sweeps.json", sweeps_b, &b).ok());
  const BundleDiff diff =
      ComputeBundleDiff(a, b, DiffOptions{}, "a", "b");
  const DiffRow* row = FindRow(diff.perf, "sim_validation (sweep wall s)");
  ASSERT_NE(row, nullptr);
  EXPECT_DOUBLE_EQ(row->delta, 5.0);
  EXPECT_TRUE(row->significant);
}

TEST(ReportDiffTest, RenderersEmbedTheComparison) {
  ReportBundle clean;
  ReportBundle faulted;
  ASSERT_TRUE(
      AddReportInput("clean.json", MakeRun("run", false), &clean).ok());
  ASSERT_TRUE(
      AddReportInput("faulted.json", MakeRun("run", true), &faulted).ok());
  const BundleDiff diff = ComputeBundleDiff(clean, faulted, DiffOptions{},
                                            "clean.json", "faulted.json");

  const std::string md = RenderMarkdownDiff(diff, "clean vs faulted");
  EXPECT_NE(md.find("clean vs faulted"), std::string::npos);
  EXPECT_NE(md.find("clean.json"), std::string::npos);
  EXPECT_NE(md.find("faulted.json"), std::string::npos);
  EXPECT_NE(md.find("availability.attainment"), std::string::npos) << md;
  EXPECT_NE(md.find("shed"), std::string::npos);

  const std::string html = RenderHtmlDiff(diff, "clean vs faulted");
  EXPECT_NE(html.find("<html"), std::string::npos);
  EXPECT_NE(html.find("availability.attainment"), std::string::npos);
  EXPECT_NE(html.find("clean vs faulted"), std::string::npos);
}

}  // namespace
}  // namespace memstream::obs
