#include "workload/catalog.h"

#include <gtest/gtest.h>

namespace memstream::workload {
namespace {

TEST(CatalogTest, UniformTitlesContiguousLayout) {
  auto catalog = Catalog::Uniform(10, 1 * kMBps, 7200);  // 2-hour movies
  ASSERT_TRUE(catalog.ok());
  EXPECT_EQ(catalog.value().size(), 10);
  const Bytes movie = 7200 * kMB;
  EXPECT_DOUBLE_EQ(catalog.value().TotalSize(), 10 * movie);
  for (std::int64_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(catalog.value().title(i).disk_offset,
                     static_cast<double>(i) * movie);
    EXPECT_DOUBLE_EQ(catalog.value().title(i).size, movie);
  }
}

TEST(CatalogTest, FromSpecsMixedRates) {
  auto catalog = Catalog::FromSpecs({{1 * kMBps, 100}, {10 * kKBps, 200}});
  ASSERT_TRUE(catalog.ok());
  EXPECT_EQ(catalog.value().size(), 2);
  EXPECT_DOUBLE_EQ(catalog.value().title(0).size, 100 * kMB);
  EXPECT_DOUBLE_EQ(catalog.value().title(1).size, 2 * kMB);
  EXPECT_DOUBLE_EQ(catalog.value().title(1).disk_offset, 100 * kMB);
}

TEST(CatalogTest, SelectCacheResidentsGreedyPrefix) {
  auto catalog = Catalog::Uniform(10, 1 * kMBps, 1000);  // 1 GB each
  ASSERT_TRUE(catalog.ok());
  // 3.5 GB of cache fits exactly the three most popular titles.
  const auto residents = catalog.value().SelectCacheResidents(3.5 * kGB);
  EXPECT_EQ(residents, (std::vector<std::int64_t>{0, 1, 2}));
}

TEST(CatalogTest, SelectCacheResidentsEmptyWhenTooSmall) {
  auto catalog = Catalog::Uniform(5, 1 * kMBps, 1000);
  ASSERT_TRUE(catalog.ok());
  EXPECT_TRUE(catalog.value().SelectCacheResidents(0.5 * kGB).empty());
}

TEST(CatalogTest, SelectCacheResidentsAllWhenHuge) {
  auto catalog = Catalog::Uniform(5, 1 * kMBps, 1000);
  ASSERT_TRUE(catalog.ok());
  EXPECT_EQ(catalog.value().SelectCacheResidents(100 * kGB).size(), 5u);
}

TEST(CatalogTest, InvalidSpecsRejected) {
  EXPECT_FALSE(Catalog::Uniform(0, 1 * kMBps, 100).ok());
  EXPECT_FALSE(Catalog::Uniform(5, 0, 100).ok());
  EXPECT_FALSE(Catalog::Uniform(5, 1 * kMBps, 0).ok());
  EXPECT_FALSE(Catalog::FromSpecs({}).ok());
  EXPECT_FALSE(Catalog::FromSpecs({{0, 100}}).ok());
}

}  // namespace
}  // namespace memstream::workload
