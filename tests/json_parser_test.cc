// Hostile-input hardening tests for the minimal JSON parser: depth
// bombs, truncations, malformed escapes, and a deterministic randomized
// sweep of mutated and garbage documents — none of which may crash,
// recurse unboundedly, or report success on invalid input.

#include "obs/json_parser.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <random>
#include <string>

namespace memstream::obs {
namespace {

bool Parses(const std::string& text) {
  bool ok = false;
  ParseJson(text, &ok);
  return ok;
}

TEST(JsonParserTest, AcceptsTheBasics) {
  EXPECT_TRUE(Parses("null"));
  EXPECT_TRUE(Parses("true"));
  EXPECT_TRUE(Parses("-12.5e3"));
  EXPECT_TRUE(Parses("\"a\\n\\\"b\\\\\""));
  EXPECT_TRUE(Parses("[1, [2, {\"k\": [3]}], null]"));
  EXPECT_TRUE(Parses("{\"a\": {\"b\": {\"c\": 1}}}"));
}

TEST(JsonParserTest, RejectsDepthBombsWithoutOverflow) {
  // A flat string of open brackets used to recurse once per byte; a
  // megabyte of them must fail fast instead of smashing the stack.
  const std::string bomb(1 << 20, '[');
  EXPECT_FALSE(Parses(bomb));
  const std::string object_bomb = [] {
    std::string s;
    for (int i = 0; i < 100000; ++i) s += "{\"k\":";
    return s;
  }();
  EXPECT_FALSE(Parses(object_bomb));
}

TEST(JsonParserTest, MaxDepthBoundaryIsExact) {
  auto nested = [](std::size_t depth) {
    std::string s(depth, '[');
    s += "1";
    s.append(depth, ']');
    return s;
  };
  EXPECT_TRUE(Parses(nested(JsonParser::kMaxDepth)));
  EXPECT_FALSE(Parses(nested(JsonParser::kMaxDepth + 1)));
}

TEST(JsonParserTest, RejectsTruncatedDocuments) {
  const std::string doc = "{\"key\": [1, 2, {\"s\": \"text\"}]}";
  for (std::size_t cut = 1; cut < doc.size(); ++cut) {
    EXPECT_FALSE(Parses(doc.substr(0, cut))) << doc.substr(0, cut);
  }
  EXPECT_TRUE(Parses(doc));
}

TEST(JsonParserTest, RejectsMalformedEscapes) {
  EXPECT_FALSE(Parses("\"\\u12\""));      // too few hex digits
  EXPECT_FALSE(Parses("\"\\u12xz\""));    // non-hex digits
  EXPECT_FALSE(Parses("\"\\u123"));       // truncated mid-escape
  EXPECT_FALSE(Parses("\"\\q\""));        // unknown escape
  EXPECT_TRUE(Parses("\"\\u1234\""));     // exactly four hex digits
}

TEST(JsonParserTest, RejectsTrailingGarbageAndBareJunk) {
  EXPECT_FALSE(Parses("{} extra"));
  EXPECT_FALSE(Parses("1 2"));
  EXPECT_FALSE(Parses(""));
  EXPECT_FALSE(Parses("   "));
  EXPECT_FALSE(Parses("{,}"));
  EXPECT_FALSE(Parses("[1,]"));
  EXPECT_FALSE(Parses("{\"a\" 1}"));
  EXPECT_FALSE(Parses("nul"));
}

TEST(JsonParserTest, HugeNumbersSaturateLikeStrtod) {
  bool ok = false;
  const JsonValue v = ParseJson("1e999", &ok);
  EXPECT_TRUE(ok);
  EXPECT_TRUE(std::isinf(v.number));
  const JsonValue neg = ParseJson("-1e999", &ok);
  EXPECT_TRUE(ok);
  EXPECT_TRUE(std::isinf(neg.number));
  EXPECT_LT(neg.number, 0);
}

TEST(JsonParserTest, DuplicateKeysKeepTheFirst) {
  bool ok = false;
  const JsonValue v = ParseJson("{\"k\": 1, \"k\": 2}", &ok);
  ASSERT_TRUE(ok);
  EXPECT_DOUBLE_EQ(v.Num("k"), 1);
}

TEST(JsonParserTest, ErrorPositionPointsIntoTheDocument) {
  const std::string doc = "{\"ok\": 1, \"bad\": @}";
  JsonParser parser(doc);
  parser.Parse();
  EXPECT_FALSE(parser.ok());
  EXPECT_LE(parser.error_pos(), doc.size());
  EXPECT_GE(parser.error_pos(), doc.find('@'));
}

// Deterministic fuzz: mutate a valid document one byte at a time and
// also feed pure garbage. The only requirements are "no crash" and
// "full consumption of invalid text is never reported as success" —
// both checked implicitly by running under the test harness and
// asserting parser self-consistency.
TEST(JsonParserTest, RandomizedMutationsNeverCrash) {
  const std::string seed_doc =
      "{\"title\":\"run\",\"analytic\":[{\"k\":\"dram\",\"v\":1.5e9}],"
      "\"nested\":{\"a\":[1,2,3],\"b\":null,\"c\":true},\"s\":\"\\u0041\"}";
  ASSERT_TRUE(Parses(seed_doc));

  std::mt19937 rng(20260808);
  std::uniform_int_distribution<int> pos(0,
                                         static_cast<int>(seed_doc.size()) - 1);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int round = 0; round < 2000; ++round) {
    std::string mutated = seed_doc;
    const int mutations = 1 + round % 4;
    for (int m = 0; m < mutations; ++m) {
      mutated[static_cast<std::size_t>(pos(rng))] =
          static_cast<char>(byte(rng));
    }
    JsonParser parser(mutated);
    parser.Parse();
    if (!parser.ok()) {
      EXPECT_LE(parser.error_pos(), mutated.size());
    }
  }

  std::uniform_int_distribution<int> len(0, 256);
  for (int round = 0; round < 2000; ++round) {
    std::string garbage;
    const int n = len(rng);
    garbage.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      garbage.push_back(static_cast<char>(byte(rng)));
    }
    JsonParser parser(garbage);
    parser.Parse();
    if (!parser.ok()) {
      EXPECT_LE(parser.error_pos(), garbage.size());
    }
  }
}

// Deterministic random *valid* documents must always parse: generate a
// bounded random tree, render it with manual escaping, and round-trip.
TEST(JsonParserTest, RandomizedValidDocumentsAlwaysParse) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> kind(0, 5);
  std::uniform_int_distribution<int> fan(0, 3);
  std::uniform_real_distribution<double> num(-1e6, 1e6);

  // Recursive generator; depth-bounded far below kMaxDepth.
  std::function<std::string(int)> gen = [&](int depth) -> std::string {
    const int k = depth >= 6 ? kind(rng) % 4 : kind(rng);
    switch (k) {
      case 0:
        return "null";
      case 1:
        return kind(rng) % 2 ? "true" : "false";
      case 2:
        return std::to_string(num(rng));
      case 3:
        return "\"s" + std::to_string(kind(rng)) + "\\n\\t\"";
      case 4: {
        std::string s = "[";
        const int n = fan(rng);
        for (int i = 0; i < n; ++i) {
          if (i) s += ",";
          s += gen(depth + 1);
        }
        return s + "]";
      }
      default: {
        std::string s = "{";
        const int n = fan(rng);
        for (int i = 0; i < n; ++i) {
          if (i) s += ",";
          s += "\"k" + std::to_string(i) + "\":" + gen(depth + 1);
        }
        return s + "}";
      }
    }
  };
  for (int round = 0; round < 500; ++round) {
    const std::string doc = gen(0);
    EXPECT_TRUE(Parses(doc)) << doc;
  }
}

}  // namespace
}  // namespace memstream::obs
