#include "fault/degradation.h"

#include <gtest/gtest.h>

#include "device/device_catalog.h"
#include "model/profiles.h"

namespace memstream::fault {
namespace {

model::DeviceProfile G3Profile() {
  return model::MemsProfileMaxLatency(
      device::MemsDevice::Create(device::MemsG3()).value());
}

model::DeviceProfile DiskProfile(std::int64_t n) {
  auto disk = device::DiskDrive::Create(device::FutureDisk2007());
  return model::DiskProfileConservative(disk.value(), n);
}

DegradationConfig BaseConfig(model::CachePolicy policy) {
  DegradationConfig config;
  config.policy = policy;
  config.k = 2;
  config.bit_rate = 8 * kMBps;
  config.mems = G3Profile();
  config.disk = DiskProfile(30);
  config.n_disk = 15;
  config.n_cache = 15;
  config.refill_delay = 1.0;
  return config;
}

TEST(DegradationTest, HealthyBankReplansToFullStrength) {
  auto manager =
      DegradationManager::Create(BaseConfig(model::CachePolicy::kReplicated));
  ASSERT_TRUE(manager.ok());
  CacheReplan plan = manager.value().Replan(2, 1.0);
  EXPECT_TRUE(plan.feasible);
  EXPECT_FALSE(plan.cache_down);
  EXPECT_EQ(plan.retained, 15);
  EXPECT_EQ(plan.shed, 0);
  EXPECT_EQ(plan.to_disk, 0);
  EXPECT_GT(plan.mems_cycle, 0.0);
}

TEST(DegradationTest, ReplicatedDeviceLossReshapesWithLongerCycle) {
  auto manager =
      DegradationManager::Create(BaseConfig(model::CachePolicy::kReplicated));
  ASSERT_TRUE(manager.ok());
  const CacheReplan healthy = manager.value().Replan(2, 1.0);
  const CacheReplan degraded = manager.value().Replan(1, 1.0);
  EXPECT_TRUE(degraded.feasible);
  EXPECT_FALSE(degraded.cache_down);
  // One G3 device still sustains all 15 cached streams (Theorem 4 with
  // k' = 1), at the cost of a bigger per-stream buffer / longer cycle.
  EXPECT_EQ(degraded.retained, 15);
  EXPECT_EQ(degraded.shed, 0);
  EXPECT_GT(degraded.mems_cycle, healthy.mems_cycle);
  EXPECT_GT(degraded.per_stream_buffer, healthy.per_stream_buffer);
  EXPECT_NE(degraded.action.find("reshape"), std::string::npos);
}

TEST(DegradationTest, SevereTipLossShedsFewestStreams) {
  auto config = BaseConfig(model::CachePolicy::kReplicated);
  config.k = 1;
  auto manager = DegradationManager::Create(config);
  ASSERT_TRUE(manager.ok());
  // 90% tip loss: one device at 0.1 * Rm sustains only a few streams.
  const CacheReplan plan = manager.value().Replan(1, 0.1);
  ASSERT_TRUE(plan.feasible);
  EXPECT_GT(plan.shed, 0);
  EXPECT_EQ(plan.retained + plan.shed, 15);
  EXPECT_EQ(plan.retained, manager.value().MaxSustainable(1, 0.1));
  EXPECT_NE(plan.action.find("shed"), std::string::npos);
}

TEST(DegradationTest, StripedDeviceLossDropsTheCachePath) {
  auto manager =
      DegradationManager::Create(BaseConfig(model::CachePolicy::kStriped));
  ASSERT_TRUE(manager.ok());
  const CacheReplan plan = manager.value().Replan(1, 1.0);
  EXPECT_TRUE(plan.cache_down);
  EXPECT_EQ(plan.retained, 0);
  // The zoned disk serving 15 streams at 8 MB/s has some headroom, but
  // not 15 streams' worth: a mix of fallback and shedding.
  EXPECT_GT(plan.to_disk, 0);
  EXPECT_GT(plan.shed, 0);
  EXPECT_EQ(plan.to_disk + plan.shed, 15);
  EXPECT_GT(plan.disk_cycle, 0.0);
  EXPECT_NE(plan.action.find("cache down"), std::string::npos);
}

TEST(DegradationTest, DiskFallbackRespectsTheoremOneBound) {
  auto manager =
      DegradationManager::Create(BaseConfig(model::CachePolicy::kStriped));
  ASSERT_TRUE(manager.ok());
  const CacheReplan plan = manager.value().Replan(0, 1.0);
  // Whatever moved must itself be a feasible Theorem 1 extension...
  EXPECT_TRUE(manager.value().DiskCanAbsorb(plan.to_disk));
  // ...and one more stream must not be (the binary search is maximal).
  EXPECT_FALSE(manager.value().DiskCanAbsorb(plan.to_disk + 1));
}

TEST(DegradationTest, DisabledFallbackShedsEverythingOnCacheDown) {
  auto config = BaseConfig(model::CachePolicy::kStriped);
  config.allow_disk_fallback = false;
  auto manager = DegradationManager::Create(config);
  ASSERT_TRUE(manager.ok());
  const CacheReplan plan = manager.value().Replan(1, 1.0);
  EXPECT_TRUE(plan.cache_down);
  EXPECT_EQ(plan.to_disk, 0);
  EXPECT_EQ(plan.shed, 15);
  EXPECT_FALSE(plan.feasible);
}

TEST(DegradationTest, CreateValidates) {
  DegradationConfig config = BaseConfig(model::CachePolicy::kReplicated);
  config.k = 0;
  EXPECT_FALSE(DegradationManager::Create(config).ok());
  config = BaseConfig(model::CachePolicy::kReplicated);
  config.bit_rate = 0;
  EXPECT_FALSE(DegradationManager::Create(config).ok());
  config = BaseConfig(model::CachePolicy::kReplicated);
  config.refill_delay = -1;
  EXPECT_FALSE(DegradationManager::Create(config).ok());
}

}  // namespace
}  // namespace memstream::fault
