// Cross-module end-to-end checks: the analytical model's predictions
// (Theorems 1-4, Eq. 11) validated against the executing simulator and
// sampled workloads, plus a miniature Fig. 9-style budget experiment.

#include <gtest/gtest.h>

#include "device/device_catalog.h"
#include "model/planner.h"
#include "server/admission.h"
#include "server/media_server.h"
#include "workload/catalog.h"
#include "workload/popularity.h"
#include "workload/request_gen.h"

namespace memstream {
namespace {

using model::CachePolicy;
using model::Popularity;

device::DiskParameters UniformDisk() {
  device::DiskParameters p = device::FutureDisk2007();
  p.inner_rate = p.outer_rate;
  return p;
}

// End-to-end: the Eq. 11 hit rate -> offline cache selection -> sampled
// request trace all agree.
TEST(IntegrationTest, HitRatePipelineConsistent) {
  const Popularity pop{0.05, 0.95};
  auto catalog = workload::Catalog::Uniform(1000, 1 * kMBps, 5000);
  ASSERT_TRUE(catalog.ok());

  // A 4-device striped bank caches 4 x 10 GB of the 5 TB catalog.
  const double p = model::CachedFraction(CachePolicy::kStriped, 4, 10 * kGB,
                                         catalog.value().TotalSize());
  const auto residents =
      catalog.value().SelectCacheResidents(4.0 * 10 * kGB);
  EXPECT_NEAR(static_cast<double>(residents.size()) / 1000.0, p, 0.002);

  auto analytic = model::HitRate(pop, p);
  ASSERT_TRUE(analytic.ok());

  auto sampler = workload::TwoClassSampler::Create(pop, 1000);
  ASSERT_TRUE(sampler.ok());
  Rng rng(77);
  auto requests = workload::GenerateRequests(
      catalog.value(),
      [&](Rng& r) { return sampler.value().Sample(r); }, 10.0, 10000.0,
      rng);
  ASSERT_TRUE(requests.ok());
  const auto stats = workload::MeasureHitRate(requests.value(), residents);
  EXPECT_NEAR(stats.hit_rate, analytic.value(), 0.01);
}

// End-to-end: all three server modes run the same stream population
// jitter-free when sized by the model, and the MEMS modes use less DRAM.
TEST(IntegrationTest, AllModesJitterFreeAndOrdered) {
  Bytes dram[3];
  int idx = 0;
  for (auto mode : {server::ServerMode::kDirect,
                    server::ServerMode::kMemsBuffer,
                    server::ServerMode::kMemsCache}) {
    server::MediaServerConfig config;
    config.mode = mode;
    config.disk = UniformDisk();
    config.k = 2;
    config.cache_policy = CachePolicy::kReplicated;
    config.cached_fraction_of_streams = 0.5;
    config.num_streams = 60;
    config.bit_rate = 500 * kKBps;
    config.sim_duration = 20;
    auto result = server::RunMediaServer(config);
    ASSERT_TRUE(result.ok())
        << ServerModeName(mode) << ": " << result.status().ToString();
    EXPECT_EQ(result.value().qos.underflow_events, 0) << ServerModeName(mode);
    dram[idx++] = result.value().analytic_dram_total;
  }
  EXPECT_LT(dram[1], dram[0]);  // buffer mode cheaper than direct
  EXPECT_LT(dram[2], dram[0]);  // cache mode cheaper than direct
}

// Miniature Fig. 9: at a fixed budget, the cache helps under skew and
// hurts under uniform popularity — and the planner's prediction agrees
// in *direction* with simulated runs at the planned stream counts.
TEST(IntegrationTest, BudgetExperimentDirectionallyCorrect) {
  auto disk = device::DiskDrive::Create(device::FutureDisk2007());
  ASSERT_TRUE(disk.ok());
  auto mems = device::MemsDevice::Create(device::MemsG3());
  ASSERT_TRUE(mems.ok());

  model::CacheSystemConfig base;
  base.total_budget = 100;
  base.k = 2;
  base.policy = CachePolicy::kStriped;
  base.mems_capacity = 10 * kGB;
  base.content_size = 1000 * kGB;
  base.bit_rate = 100 * kKBps;
  base.disk_rate = 300 * kMBps;
  base.disk_latency = model::DiskLatencyFn(disk.value());
  base.mems = model::MemsProfileMaxLatency(mems.value());

  model::CacheSystemConfig skewed = base;
  skewed.popularity = {0.01, 0.99};
  model::CacheSystemConfig uniform = base;
  uniform.popularity = {0.5, 0.5};
  model::CacheSystemConfig no_cache = base;
  no_cache.k = 0;

  auto t_skewed = model::MaxCacheSystemThroughput(skewed);
  auto t_uniform = model::MaxCacheSystemThroughput(uniform);
  auto t_none = model::MaxCacheSystemThroughput(no_cache);
  ASSERT_TRUE(t_skewed.ok());
  ASSERT_TRUE(t_uniform.ok());
  ASSERT_TRUE(t_none.ok());

  EXPECT_GT(t_skewed.value().total_streams, t_none.value().total_streams);
  EXPECT_LT(t_uniform.value().total_streams, t_none.value().total_streams);
}

// The planner's DRAM accounting is tight: simulating at the planned
// maximum must stay within the purchasable DRAM (scaled down so the
// simulation stays fast).
TEST(IntegrationTest, PlannedLoadFitsSimulatedDram) {
  server::MediaServerConfig config;
  config.mode = server::ServerMode::kMemsCache;
  config.disk = UniformDisk();
  config.k = 1;
  config.cache_policy = CachePolicy::kStriped;
  config.cached_fraction_of_streams = 0.5;
  config.num_streams = 40;
  config.bit_rate = 1 * kMBps;
  config.sim_duration = 15;
  auto result = server::RunMediaServer(config);
  ASSERT_TRUE(result.ok());
  // Double-buffered execution uses at most ~2x the analytic sizing.
  EXPECT_LE(result.value().sim_peak_dram,
            2.2 * result.value().analytic_dram_total);
}

// Admission control glued to the simulator: everything the controller
// admits plays jitter-free.
TEST(IntegrationTest, AdmittedLoadRunsJitterFree) {
  auto disk = device::DiskDrive::Create(UniformDisk());
  ASSERT_TRUE(disk.ok());
  server::AdmissionConfig admission;
  admission.dram_budget = 200 * kMB;
  admission.disk_rate = 300 * kMBps;
  admission.disk_latency = model::DiskLatencyFn(disk.value());
  auto ctrl = server::AdmissionController::Create(admission);
  ASSERT_TRUE(ctrl.ok());
  std::int64_t n = 0;
  while (ctrl.value().TryAdmit(1 * kMBps).admitted) ++n;
  ASSERT_GT(n, 0);

  server::MediaServerConfig config;
  config.mode = server::ServerMode::kDirect;
  config.disk = UniformDisk();
  config.num_streams = n;
  config.bit_rate = 1 * kMBps;
  config.sim_duration = 20;
  auto result = server::RunMediaServer(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().qos.underflow_events, 0);
}

}  // namespace
}  // namespace memstream
