// Catalog placement: ring balance, replica distinctness, the fitted
// head/tail split, and the allocation-free Lookup contract (this binary
// replaces global operator new with a counting version, as in
// cycle_alloc_test).

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "farm/placement.h"

namespace {
std::atomic<std::int64_t> g_allocations{0};
}  // namespace

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace memstream::farm {
namespace {

std::int64_t CurrentAllocs() {
  return g_allocations.load(std::memory_order_relaxed);
}

PlacementConfig SmallConfig() {
  PlacementConfig config;
  config.num_shards = 4;
  config.num_titles = 200;
  config.zipf_exponent = 0.8;
  return config;
}

TEST(ConsistentHashPlacementTest, LookupReturnsValidShard) {
  auto p = ConsistentHashPlacement::Create(SmallConfig());
  ASSERT_TRUE(p.ok());
  for (std::int64_t t = 0; t < 200; ++t) {
    const ShardSet s = p.value()->Lookup(t);
    ASSERT_EQ(s.count, 1);
    EXPECT_GE(s.shard[0], 0);
    EXPECT_LT(s.shard[0], 4);
  }
}

TEST(ConsistentHashPlacementTest, LookupIsDeterministic) {
  auto a = ConsistentHashPlacement::Create(SmallConfig());
  auto b = ConsistentHashPlacement::Create(SmallConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (std::int64_t t = 0; t < 200; ++t) {
    EXPECT_EQ(a.value()->Lookup(t).shard[0], b.value()->Lookup(t).shard[0]);
  }
}

TEST(ConsistentHashPlacementTest, ReplicasAreDistinctShards) {
  PlacementConfig config = SmallConfig();
  config.replicas = 3;
  auto p = ConsistentHashPlacement::Create(config);
  ASSERT_TRUE(p.ok());
  for (std::int64_t t = 0; t < 200; ++t) {
    const ShardSet s = p.value()->Lookup(t);
    ASSERT_EQ(s.count, 3);
    EXPECT_NE(s.shard[0], s.shard[1]);
    EXPECT_NE(s.shard[0], s.shard[2]);
    EXPECT_NE(s.shard[1], s.shard[2]);
  }
  EXPECT_EQ(p.value()->total_copies(), 600);
}

// Regression: ring vnode inputs must be domain-separated from title ids.
// An untagged vnode (shard 0, v) hashes identically to title v, which
// silently pinned every low-id title onto shard 0.
TEST(ConsistentHashPlacementTest, CatalogSplitsRoughlyEvenly) {
  auto p = ConsistentHashPlacement::Create(SmallConfig());
  ASSERT_TRUE(p.ok());
  std::vector<int> count(4, 0);
  for (std::int64_t t = 0; t < 200; ++t) {
    ++count[static_cast<std::size_t>(p.value()->Lookup(t).shard[0])];
  }
  for (int c : count) {
    EXPECT_GT(c, 10);   // mean is 50; gross capture would leave ~0
    EXPECT_LT(c, 100);  // ...and pile ~130+ onto one shard
  }
}

TEST(ConsistentHashPlacementTest, LookupIsAllocationFree) {
  auto p = ConsistentHashPlacement::Create(SmallConfig());
  ASSERT_TRUE(p.ok());
  (void)p.value()->Lookup(0);  // warm anything lazy
  const std::int64_t before = CurrentAllocs();
  std::int64_t sum = 0;
  for (std::int64_t t = 0; t < 200; ++t) {
    sum += p.value()->Lookup(t).shard[0];
  }
  EXPECT_EQ(CurrentAllocs(), before) << "Lookup touched the heap";
  EXPECT_GE(sum, 0);
}

TEST(PopularityAwarePlacementTest, HeadIsReplicatedTailIsNot) {
  PlacementConfig config = SmallConfig();
  config.replicas = 3;
  auto p = PopularityAwarePlacement::Create(config);
  ASSERT_TRUE(p.ok());
  const std::int64_t head = p.value()->head_titles();
  ASSERT_GT(head, 0);
  ASSERT_LT(head, config.num_titles);
  for (std::int64_t t = 0; t < config.num_titles; ++t) {
    const ShardSet s = p.value()->Lookup(t);
    if (t < head) {
      ASSERT_EQ(s.count, 3) << "head title " << t;
      EXPECT_NE(s.shard[0], s.shard[1]);
      EXPECT_NE(s.shard[1], s.shard[2]);
      EXPECT_NE(s.shard[0], s.shard[2]);
    } else {
      ASSERT_EQ(s.count, 1) << "tail title " << t;
    }
  }
  EXPECT_EQ(p.value()->total_copies(),
            head * 3 + (config.num_titles - head));
}

TEST(PopularityAwarePlacementTest, SplitFollowsReplicationBudget) {
  PlacementConfig config = SmallConfig();
  config.replicas = 2;
  config.replication_budget = 0.10;
  auto p = PopularityAwarePlacement::Create(config);
  ASSERT_TRUE(p.ok());
  // The fitted head fraction is the budget; the head captures the Zipf
  // mass FitZipfTwoClass assigns to it.
  EXPECT_NEAR(p.value()->fitted().x, 0.10, 0.01);
  EXPECT_GT(p.value()->fitted().y, p.value()->fitted().x);
  EXPECT_EQ(p.value()->head_titles(),
            std::llround(p.value()->fitted().x * 200));
}

TEST(PopularityAwarePlacementTest, LookupIsAllocationFree) {
  PlacementConfig config = SmallConfig();
  config.replicas = 3;
  auto p = PopularityAwarePlacement::Create(config);
  ASSERT_TRUE(p.ok());
  (void)p.value()->Lookup(0);
  const std::int64_t before = CurrentAllocs();
  std::int64_t sum = 0;
  for (std::int64_t t = 0; t < 200; ++t) {
    sum += p.value()->Lookup(t).shard[0];
  }
  EXPECT_EQ(CurrentAllocs(), before) << "Lookup touched the heap";
  EXPECT_GE(sum, 0);
}

TEST(PlacementFactoryTest, DispatchesByPolicy) {
  auto hash = MakePlacement(PlacementPolicy::kConsistentHash, SmallConfig());
  ASSERT_TRUE(hash.ok());
  EXPECT_STREQ(hash.value()->name(), "consistent_hash");
  auto pop = MakePlacement(PlacementPolicy::kPopularityAware, SmallConfig());
  ASSERT_TRUE(pop.ok());
  EXPECT_STREQ(pop.value()->name(), "popularity_aware");
}

TEST(PlacementFactoryTest, RejectsBadConfig) {
  PlacementConfig config = SmallConfig();
  config.num_shards = 0;
  EXPECT_FALSE(
      MakePlacement(PlacementPolicy::kConsistentHash, config).ok());
  config = SmallConfig();
  config.replicas = kMaxReplicas + 1;
  EXPECT_FALSE(
      MakePlacement(PlacementPolicy::kPopularityAware, config).ok());
  config = SmallConfig();
  config.replication_budget = 0;
  EXPECT_FALSE(
      MakePlacement(PlacementPolicy::kPopularityAware, config).ok());
}

TEST(PlacementFactoryTest, ReplicasClampToShardCount) {
  PlacementConfig config = SmallConfig();
  config.num_shards = 2;
  config.replicas = 5;
  auto p = MakePlacement(PlacementPolicy::kConsistentHash, config);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value()->Lookup(0).count, 2);
}

}  // namespace
}  // namespace memstream::farm
