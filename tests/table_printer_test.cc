#include "common/table_printer.h"

#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

namespace memstream {
namespace {

TEST(TablePrinterTest, RendersHeaderAndRows) {
  TablePrinter t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"beta", "22"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  // header + separator + 2 rows = 4 lines
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"only"});
  EXPECT_EQ(t.NumRows(), 1u);
  EXPECT_NE(t.ToString().find("only"), std::string::npos);
}

TEST(TablePrinterTest, CellFormatsDouble) {
  EXPECT_EQ(TablePrinter::Cell(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Cell(static_cast<std::int64_t>(42)), "42");
}

TEST(TablePrinterTest, ColumnsAligned) {
  TablePrinter t({"x", "longheader"});
  t.AddRow({"aa", "1"});
  const std::string out = t.ToString();
  std::istringstream lines(out);
  std::string header, sep, row;
  std::getline(lines, header);
  std::getline(lines, sep);
  std::getline(lines, row);
  EXPECT_EQ(header.size(), sep.size());
  EXPECT_EQ(header.size(), row.size());
}

TEST(TablePrinterTest, PrintWritesToStream) {
  TablePrinter t({"h"});
  t.AddRow({"v"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_EQ(os.str(), t.ToString());
}

}  // namespace
}  // namespace memstream
