#include "model/mems_cache.h"

#include <gtest/gtest.h>

#include "device/device_catalog.h"
#include "model/profiles.h"
#include "model/timecycle.h"

namespace memstream::model {
namespace {

DeviceProfile G3Profile() {
  auto dev = device::MemsDevice::Create(device::MemsG3());
  EXPECT_TRUE(dev.ok());
  return MemsProfileMaxLatency(dev.value());
}

// --- Eq. 11: hit rate ------------------------------------------------------

TEST(HitRateTest, WithinPopularClassIsLinear) {
  const Popularity pop{0.10, 0.90};
  EXPECT_NEAR(HitRate(pop, 0.05).value(), 0.45, 1e-12);
  EXPECT_NEAR(HitRate(pop, 0.10).value(), 0.90, 1e-12);
}

TEST(HitRateTest, BeyondPopularClass) {
  const Popularity pop{0.10, 0.90};
  // p = 0.55: all of the popular class plus half the unpopular mass.
  EXPECT_NEAR(HitRate(pop, 0.55).value(), 0.90 + 0.5 * 0.10, 1e-12);
  EXPECT_NEAR(HitRate(pop, 1.0).value(), 1.0, 1e-12);
}

TEST(HitRateTest, ContinuousAtClassBoundary) {
  const Popularity pop{0.2, 0.8};
  const double eps = 1e-9;
  EXPECT_NEAR(HitRate(pop, 0.2 - eps).value(),
              HitRate(pop, 0.2 + eps).value(), 1e-6);
}

TEST(HitRateTest, ZeroCacheZeroHits) {
  EXPECT_DOUBLE_EQ(HitRate({0.01, 0.99}, 0.0).value(), 0.0);
}

TEST(HitRateTest, UniformPopularityHitRateEqualsP) {
  const Popularity uniform{0.5, 0.5};
  for (double p : {0.1, 0.3, 0.5, 0.8}) {
    EXPECT_NEAR(HitRate(uniform, p).value(), p, 1e-12) << "p=" << p;
  }
}

TEST(HitRateTest, MonotoneInP) {
  const Popularity pop{0.05, 0.95};
  double prev = -1;
  for (double p = 0; p <= 1.0; p += 0.01) {
    const double h = HitRate(pop, p).value();
    EXPECT_GE(h, prev);
    prev = h;
  }
}

TEST(HitRateTest, PaperDistributionsAtOneDevice) {
  // Fig. 9/10 setting: one device caches p = 1% of the content.
  EXPECT_NEAR(HitRate({0.01, 0.99}, 0.01).value(), 0.99, 1e-12);
  EXPECT_NEAR(HitRate({0.05, 0.95}, 0.01).value(), 0.19, 1e-12);
  EXPECT_NEAR(HitRate({0.10, 0.90}, 0.01).value(), 0.09, 1e-12);
  EXPECT_NEAR(HitRate({0.50, 0.50}, 0.01).value(), 0.01, 1e-12);
}

TEST(HitRateTest, InvalidInputsRejected) {
  EXPECT_FALSE(HitRate({0.0, 0.9}, 0.5).ok());
  EXPECT_FALSE(HitRate({0.5, 0.4}, 0.5).ok());  // y < x
  EXPECT_FALSE(HitRate({0.1, 0.9}, 1.5).ok());
  EXPECT_FALSE(HitRate({0.1, 0.9}, -0.1).ok());
}

// --- Cached fraction --------------------------------------------------------

TEST(CachedFractionTest, StripingAggregatesReplicationDoesNot) {
  const Bytes content = 1000 * kGB;
  EXPECT_NEAR(
      CachedFraction(CachePolicy::kStriped, 4, 10 * kGB, content), 0.04,
      1e-12);
  EXPECT_NEAR(
      CachedFraction(CachePolicy::kReplicated, 4, 10 * kGB, content), 0.01,
      1e-12);
}

TEST(CachedFractionTest, ClampsToOne) {
  EXPECT_DOUBLE_EQ(
      CachedFraction(CachePolicy::kStriped, 200, 10 * kGB, 1000 * kGB), 1.0);
}

// --- Theorems 3 and 4 -------------------------------------------------------

TEST(Theorem3Test, StripedMatchesEq12) {
  const auto mems = G3Profile();
  const std::int64_t n = 100, k = 4;
  const BytesPerSecond b = 1 * kMBps;
  auto s = CachePerStreamBuffer(n, b, k, mems, CachePolicy::kStriped);
  ASSERT_TRUE(s.ok());
  const double bank = k * mems.rate;
  const double expected = n * mems.latency * bank * b / (bank - n * b);
  EXPECT_NEAR(s.value(), expected, 1e-9);
}

TEST(Theorem4Test, ReplicatedMatchesEq13) {
  const auto mems = G3Profile();
  const std::int64_t n = 100, k = 4;
  const BytesPerSecond b = 1 * kMBps;
  auto s = CachePerStreamBuffer(n, b, k, mems, CachePolicy::kReplicated);
  ASSERT_TRUE(s.ok());
  const double bank = k * mems.rate;
  const double expected = (static_cast<double>(n + k - 1) / k) *
                          mems.latency * bank * b /
                          (bank - (n + k - 1) * b);
  EXPECT_NEAR(s.value(), expected, 1e-9);
}

TEST(CacheTheoremsTest, ReplicationNeedsLessBufferThanStriping) {
  // Replication makes k x fewer effective seeks per cycle, so for the
  // same n it needs a smaller DRAM buffer (the 1:99 result of §5.2.1).
  const auto mems = G3Profile();
  const std::int64_t n = 200, k = 4;
  const BytesPerSecond b = 100 * kKBps;
  auto striped = CachePerStreamBuffer(n, b, k, mems, CachePolicy::kStriped);
  auto replicated =
      CachePerStreamBuffer(n, b, k, mems, CachePolicy::kReplicated);
  ASSERT_TRUE(striped.ok());
  ASSERT_TRUE(replicated.ok());
  EXPECT_LT(replicated.value(), striped.value() / 2.0);
}

TEST(CacheTheoremsTest, SingleDevicePoliciesCoincide) {
  // §5.2.1: "When k = 1, the replicated and striped caching is
  // equivalent."
  const auto mems = G3Profile();
  auto striped =
      CachePerStreamBuffer(50, 1 * kMBps, 1, mems, CachePolicy::kStriped);
  auto replicated = CachePerStreamBuffer(50, 1 * kMBps, 1, mems,
                                         CachePolicy::kReplicated);
  ASSERT_TRUE(striped.ok());
  ASSERT_TRUE(replicated.ok());
  EXPECT_DOUBLE_EQ(striped.value(), replicated.value());
}

TEST(Corollary3Test, StripedEqualsScaledSingleDeviceWithSameLatency) {
  // Corollary 3: k-striped cache == single device with k x throughput and
  // unchanged latency. Eq. 12 vs Theorem 1 on the scaled profile.
  const auto mems = G3Profile();
  const std::int64_t n = 100, k = 4;
  const BytesPerSecond b = 1 * kMBps;
  auto striped = CachePerStreamBuffer(n, b, k, mems, CachePolicy::kStriped);
  DeviceProfile scaled = mems;
  scaled.rate *= k;  // latency unchanged
  auto single = PerStreamBufferSize(n, b, scaled);
  ASSERT_TRUE(striped.ok());
  ASSERT_TRUE(single.ok());
  EXPECT_NEAR(striped.value(), single.value(), 1e-9);
}

TEST(Corollary4Test, ReplicatedApproachesScaledSingleDeviceForLargeN) {
  // Corollary 4: for N >> k, a k-replicated cache behaves as one device
  // with k x throughput AND latency/k.
  const auto mems = G3Profile();
  const std::int64_t n = 1000, k = 4;
  const BytesPerSecond b = 100 * kKBps;
  auto replicated =
      CachePerStreamBuffer(n, b, k, mems, CachePolicy::kReplicated);
  DeviceProfile scaled = ScaledBankProfile(mems, k, true);
  auto single = PerStreamBufferSize(n, b, scaled);
  ASSERT_TRUE(replicated.ok());
  ASSERT_TRUE(single.ok());
  EXPECT_NEAR(replicated.value() / single.value(), 1.0, 0.01);
}

TEST(CacheBandwidthTest, SustainBounds) {
  // Striped: k R > n B. Replicated: k R > (n + k - 1) B.
  const BytesPerSecond rm = 320 * kMBps, b = 1 * kMBps;
  EXPECT_TRUE(CacheCanSustain(1279, b, 4, rm, CachePolicy::kStriped));
  EXPECT_FALSE(CacheCanSustain(1280, b, 4, rm, CachePolicy::kStriped));
  EXPECT_TRUE(CacheCanSustain(1276, b, 4, rm, CachePolicy::kReplicated));
  EXPECT_FALSE(CacheCanSustain(1277, b, 4, rm, CachePolicy::kReplicated));
  EXPECT_EQ(MaxCacheStreamsBandwidthBound(b, 4, rm, CachePolicy::kStriped),
            1279);
  EXPECT_EQ(
      MaxCacheStreamsBandwidthBound(b, 4, rm, CachePolicy::kReplicated),
      1276);
}

TEST(CacheTheoremsTest, InfeasibleBeyondBandwidth) {
  const auto mems = G3Profile();
  EXPECT_EQ(CachePerStreamBuffer(1280, 1 * kMBps, 4, mems,
                                 CachePolicy::kStriped)
                .status()
                .code(),
            StatusCode::kInfeasible);
}

TEST(CachePolicyTest, Names) {
  EXPECT_STREQ(CachePolicyName(CachePolicy::kStriped), "striped");
  EXPECT_STREQ(CachePolicyName(CachePolicy::kReplicated), "replicated");
}

}  // namespace
}  // namespace memstream::model
