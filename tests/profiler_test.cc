// The hierarchical scoped profiler: nesting and exclusive-time
// arithmetic under a fake clock, deterministic cross-thread merge,
// node-table overflow accounting, alloc-delta recording, the disabled
// null-sink path, and the collapsed-stack / JSON exports.

#include "common/profiler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/json_parser.h"
#include "obs/profiler_export.h"

namespace memstream {
namespace {

using prof::ProfileNode;
using prof::ProfileSnapshot;
using prof::Profiler;
using prof::ProfScope;

// A controllable clock/alloc counter for deterministic tests. The
// profiler takes plain function pointers, so these are file-scope.
std::atomic<std::int64_t> g_fake_now{0};
std::int64_t FakeClock() {
  return g_fake_now.load(std::memory_order_relaxed);
}

std::atomic<std::int64_t> g_fake_allocs{0};
std::int64_t FakeAllocCounter() {
  return g_fake_allocs.load(std::memory_order_relaxed);
}

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::Global().Disable();
    Profiler::Global().Reset();
    g_fake_now = 0;
    g_fake_allocs = 0;
    Profiler::Global().SetClockForTesting(&FakeClock);
    Profiler::Global().Enable();
  }
  void TearDown() override {
    Profiler::Global().Disable();
    Profiler::Global().SetClockForTesting(nullptr);
    Profiler::Global().SetAllocCounter(nullptr);
    Profiler::Global().Reset();
  }
};

const ProfileNode* FindChild(const std::vector<ProfileNode>& nodes,
                             const std::string& name) {
  for (const auto& n : nodes) {
    if (n.name == name) return &n;
  }
  return nullptr;
}

TEST_F(ProfilerTest, NestedScopesSplitInclusiveAndExclusiveTime) {
  {
    ProfScope outer("outer");
    g_fake_now += 10;
    {
      ProfScope inner("inner");
      g_fake_now += 30;
    }
    g_fake_now += 5;
  }
  const ProfileSnapshot snap = Profiler::Global().Snapshot();
  ASSERT_EQ(snap.roots.size(), 1u);
  const ProfileNode& outer = snap.roots[0];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.count, 1);
  EXPECT_EQ(outer.inclusive_ns, 45);
  EXPECT_EQ(outer.exclusive_ns, 15);  // 45 - 30 spent in the child
  ASSERT_EQ(outer.children.size(), 1u);
  const ProfileNode& inner = outer.children[0];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(inner.inclusive_ns, 30);
  EXPECT_EQ(inner.exclusive_ns, 30);
  EXPECT_EQ(snap.total_inclusive_ns(), 45);
  EXPECT_EQ(snap.dropped_samples, 0);
}

TEST_F(ProfilerTest, RepeatedScopesAccumulateCountsAndTime) {
  for (int i = 0; i < 5; ++i) {
    ProfScope s("loop");
    g_fake_now += 7;
  }
  const ProfileSnapshot snap = Profiler::Global().Snapshot();
  const ProfileNode* loop = FindChild(snap.roots, "loop");
  ASSERT_NE(loop, nullptr);
  EXPECT_EQ(loop->count, 5);
  EXPECT_EQ(loop->inclusive_ns, 35);
}

TEST_F(ProfilerTest, SameNameUnderDifferentParentsStaysSeparate) {
  {
    ProfScope a("a");
    {
      ProfScope io("io");
      g_fake_now += 3;
    }
  }
  {
    ProfScope b("b");
    {
      ProfScope io("io");
      g_fake_now += 9;
    }
  }
  const ProfileSnapshot snap = Profiler::Global().Snapshot();
  const ProfileNode* a = FindChild(snap.roots, "a");
  const ProfileNode* b = FindChild(snap.roots, "b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(a->children.size(), 1u);
  ASSERT_EQ(b->children.size(), 1u);
  EXPECT_EQ(a->children[0].inclusive_ns, 3);
  EXPECT_EQ(b->children[0].inclusive_ns, 9);
}

TEST_F(ProfilerTest, ThreadMergeIsDeterministicAndComplete) {
  // Several threads record the same region names plus one private
  // region each; the merged snapshot must be identical no matter how
  // the threads interleave.
  constexpr int kThreads = 4;
  constexpr int kIters = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      static const char* const kPrivate[] = {"t0", "t1", "t2", "t3"};
      for (int i = 0; i < kIters; ++i) {
        ProfScope shared("shared");
        g_fake_now += 1;
        ProfScope mine(kPrivate[t]);
        g_fake_now += 1;
      }
    });
  }
  for (auto& th : threads) th.join();

  const ProfileSnapshot snap = Profiler::Global().Snapshot();
  EXPECT_EQ(snap.threads, kThreads);
  const ProfileNode* shared = FindChild(snap.roots, "shared");
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared->count, kThreads * kIters);
  // Children sorted by name, one per thread.
  ASSERT_EQ(shared->children.size(), static_cast<std::size_t>(kThreads));
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(shared->children[t].name, "t" + std::to_string(t));
    EXPECT_EQ(shared->children[t].count, kIters);
  }
  // A second snapshot with no new activity is byte-identical.
  const ProfileSnapshot again = Profiler::Global().Snapshot();
  EXPECT_EQ(prof::CollapsedStackText(snap), prof::CollapsedStackText(again));
}

TEST_F(ProfilerTest, NodeTableOverflowCountsDroppedSamples) {
  // Exhaust the per-thread table with distinct sibling names. Names
  // must outlive the profiler, so build a stable arena first.
  static std::vector<std::string> names;
  if (names.empty()) {
    for (std::uint32_t i = 0; i < prof::internal::ThreadState::kMaxNodes + 8;
         ++i) {
      names.push_back("region_" + std::to_string(i));
    }
  }
  for (const auto& name : names) {
    ProfScope s(name.c_str());
    g_fake_now += 1;
  }
  const ProfileSnapshot snap = Profiler::Global().Snapshot();
  EXPECT_GT(snap.dropped_samples, 0);
  EXPECT_EQ(Profiler::Global().dropped_samples(), snap.dropped_samples);
  // The table kept what fit: kMaxNodes - 1 real regions (node 0 = root).
  EXPECT_EQ(snap.roots.size(),
            static_cast<std::size_t>(
                prof::internal::ThreadState::kMaxNodes - 1));
}

TEST_F(ProfilerTest, AllocCounterRecordsPerRegionDeltas) {
  Profiler::Global().SetAllocCounter(&FakeAllocCounter);
  {
    ProfScope outer("alloc_outer");
    g_fake_allocs += 2;
    {
      ProfScope inner("alloc_inner");
      g_fake_allocs += 5;
    }
  }
  const ProfileSnapshot snap = Profiler::Global().Snapshot();
  const ProfileNode* outer = FindChild(snap.roots, "alloc_outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->alloc_delta, 7);  // inclusive, like time
  ASSERT_EQ(outer->children.size(), 1u);
  EXPECT_EQ(outer->children[0].alloc_delta, 5);
}

TEST_F(ProfilerTest, DisabledProfilerRecordsNothing) {
  Profiler::Global().Disable();
  {
    ProfScope s("ghost");
    g_fake_now += 100;
  }
  Profiler::Global().Enable();
  const ProfileSnapshot snap = Profiler::Global().Snapshot();
  EXPECT_EQ(FindChild(snap.roots, "ghost"), nullptr);
}

TEST_F(ProfilerTest, ResetDropsAllRecordedData) {
  {
    ProfScope s("before_reset");
    g_fake_now += 1;
  }
  Profiler::Global().Reset();
  Profiler::Global().Enable();
  {
    ProfScope s("after_reset");
    g_fake_now += 1;
  }
  const ProfileSnapshot snap = Profiler::Global().Snapshot();
  EXPECT_EQ(FindChild(snap.roots, "before_reset"), nullptr);
  EXPECT_NE(FindChild(snap.roots, "after_reset"), nullptr);
}

TEST_F(ProfilerTest, CollapsedStackTextUsesSemicolonPathsAndWeights) {
  {
    ProfScope outer("sim");
    g_fake_now += 10;
    {
      ProfScope inner("sim.io");
      g_fake_now += 30;
    }
  }
  const std::string folded =
      prof::CollapsedStackText(Profiler::Global().Snapshot());
  EXPECT_NE(folded.find("sim 10\n"), std::string::npos) << folded;
  EXPECT_NE(folded.find("sim;sim.io 30\n"), std::string::npos) << folded;
}

TEST_F(ProfilerTest, ProfileJsonIsValidAndCarriesTheTree) {
  {
    ProfScope outer("json_outer");
    g_fake_now += 4;
    {
      ProfScope inner("json_inner");
      g_fake_now += 6;
    }
  }
  const std::string json =
      obs::ProfileJson(Profiler::Global().Snapshot());
  bool ok = false;
  const obs::JsonValue doc = obs::ParseJson(json, &ok);
  ASSERT_TRUE(ok) << json;
  const obs::JsonValue* roots = doc.Find("roots");
  ASSERT_NE(roots, nullptr);
  ASSERT_TRUE(roots->is_array());
  ASSERT_EQ(roots->array.size(), 1u);
  EXPECT_EQ(roots->array[0].Str("name"), "json_outer");
  EXPECT_EQ(roots->array[0].Num("inclusive_ns", -1), 10);
  const obs::JsonValue* children = roots->array[0].Find("children");
  ASSERT_NE(children, nullptr);
  ASSERT_EQ(children->array.size(), 1u);
  EXPECT_EQ(children->array[0].Str("name"), "json_inner");
}

}  // namespace
}  // namespace memstream
