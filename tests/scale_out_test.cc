#include "model/scale_out.h"

#include <gtest/gtest.h>

#include "device/device_catalog.h"

namespace memstream::model {
namespace {

ScaleOutConfig FarmConfig(std::int64_t disks, BytesPerSecond bit_rate,
                          Bytes dram) {
  auto disk = device::DiskDrive::Create(device::FutureDisk2007());
  EXPECT_TRUE(disk.ok());
  ScaleOutConfig config;
  config.num_disks = disks;
  config.disk_latency = DiskLatencyFn(disk.value());
  config.bit_rate = bit_rate;
  config.dram_budget = dram;
  return config;
}

DeviceProfile G3Profile() {
  return MemsProfileMaxLatency(
      device::MemsDevice::Create(device::MemsG3()).value());
}

TEST(ScaleOutTest, SingleDiskMatchesTheorem1Budget) {
  auto plan = PlanScaleOut(FarmConfig(1, 10 * kKBps, 5 * kGB));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Must agree with the direct budget solver.
  auto disk = device::DiskDrive::Create(device::FutureDisk2007());
  ASSERT_TRUE(disk.ok());
  const auto expected = MaxStreamsWithBuffer(
      5 * kGB, 10 * kKBps, 300 * kMBps, DiskLatencyFn(disk.value()));
  EXPECT_EQ(plan.value().streams_per_disk, expected);
  EXPECT_EQ(plan.value().total_streams, expected);
}

TEST(ScaleOutTest, FarmScalesSuperlinearlyWhenDramBound) {
  // DRAM-bound regime: splitting the budget over more disks shortens
  // each disk's queue but the farm total still grows (buffering is
  // superlinear in per-disk stream count, so spreading wins).
  auto one = PlanScaleOut(FarmConfig(1, 100 * kKBps, 10 * kGB));
  auto four = PlanScaleOut(FarmConfig(4, 100 * kKBps, 10 * kGB));
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(four.ok());
  EXPECT_GT(four.value().total_streams, one.value().total_streams);
  EXPECT_LT(four.value().streams_per_disk, one.value().streams_per_disk);
}

TEST(ScaleOutTest, BandwidthBoundRegimeScalesLinearly) {
  // Huge DRAM: every disk saturates its bandwidth bound (299 DVD
  // streams), so the farm scales exactly linearly.
  auto one = PlanScaleOut(FarmConfig(1, 1 * kMBps, 1 * kTB));
  auto eight = PlanScaleOut(FarmConfig(8, 1 * kMBps, 1 * kTB));
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(eight.ok());
  EXPECT_EQ(one.value().streams_per_disk, 299);
  EXPECT_EQ(eight.value().total_streams, 8 * 299);
}

TEST(ScaleOutTest, DramAccountingRespectsBudget) {
  auto plan = PlanScaleOut(FarmConfig(6, 100 * kKBps, 3 * kGB));
  ASSERT_TRUE(plan.ok());
  EXPECT_LE(plan.value().dram_total, 3 * kGB * (1 + 1e-9));
  EXPECT_NEAR(plan.value().dram_total,
              plan.value().dram_per_disk * 6, 1e-3);
}

TEST(ScaleOutTest, PerDiskBuffersLiftTheFarm) {
  ScaleOutConfig config = FarmConfig(4, 100 * kKBps, 2 * kGB);
  config.buffer_k_per_disk = 2;
  config.mems = G3Profile();
  auto gain = ScaleOutBufferGain(config);
  ASSERT_TRUE(gain.ok()) << gain.status().ToString();
  EXPECT_GT(gain.value(), 1.3);
  auto plan = PlanScaleOut(config);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().mems_devices_total, 8);
}

TEST(ScaleOutTest, UtilizationReported) {
  auto plan = PlanScaleOut(FarmConfig(2, 1 * kMBps, 1 * kTB));
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(plan.value().disk_utilization, 299.0 / 300.0, 1e-9);
}

TEST(ScaleOutTest, InvalidInputsRejected) {
  ScaleOutConfig config;  // no latency fn
  EXPECT_FALSE(PlanScaleOut(config).ok());
  auto valid = FarmConfig(4, 1 * kMBps, 1 * kGB);
  valid.num_disks = 0;
  EXPECT_FALSE(PlanScaleOut(valid).ok());
  valid = FarmConfig(4, 1 * kMBps, 1 * kGB);
  valid.dram_budget = 0;
  EXPECT_FALSE(PlanScaleOut(valid).ok());
  valid = FarmConfig(4, 400 * kMBps, 1 * kGB);  // saturates a disk
  EXPECT_EQ(PlanScaleOut(valid).status().code(), StatusCode::kInfeasible);
}

}  // namespace
}  // namespace memstream::model
