#include "model/hybrid.h"

#include <gtest/gtest.h>

#include "device/device_catalog.h"

namespace memstream::model {
namespace {

HybridConfig MakeConfig(Popularity pop, BytesPerSecond bit_rate) {
  auto disk = device::DiskDrive::Create(device::FutureDisk2007());
  EXPECT_TRUE(disk.ok());
  auto mems = device::MemsDevice::Create(device::MemsG3());
  EXPECT_TRUE(mems.ok());

  HybridConfig config;
  config.base.total_budget = 100;
  config.base.dram_per_byte = 20.0 / kGB;
  config.base.mems_device_cost = 10;
  config.base.policy = CachePolicy::kStriped;
  config.base.popularity = pop;
  config.base.mems_capacity = 10 * kGB;
  config.base.content_size = 1000 * kGB;
  config.base.bit_rate = bit_rate;
  config.base.disk_rate = 300 * kMBps;
  config.base.disk_latency = DiskLatencyFn(disk.value());
  config.base.mems = MemsProfileMaxLatency(mems.value());
  config.max_devices = 6;
  return config;
}

TEST(HybridTest, PlanNeverWorseThanPureConfigs) {
  for (auto pop : {Popularity{0.01, 0.99}, Popularity{0.2, 0.8},
                   Popularity{0.5, 0.5}}) {
    auto config = MakeConfig(pop, 100 * kKBps);
    auto plan = PlanHybrid(config);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();

    auto pure_cache = EvaluateHybridSplit(config, 0, 2);
    auto pure_buffer = EvaluateHybridSplit(config, 2, 0);
    auto nothing = EvaluateHybridSplit(config, 0, 0);
    ASSERT_TRUE(pure_cache.ok());
    ASSERT_TRUE(pure_buffer.ok());
    ASSERT_TRUE(nothing.ok());
    EXPECT_GE(plan.value().throughput.total_streams,
              pure_cache.value().total_streams);
    EXPECT_GE(plan.value().throughput.total_streams,
              pure_buffer.value().total_streams);
    EXPECT_GE(plan.value().throughput.total_streams,
              nothing.value().total_streams);
  }
}

TEST(HybridTest, UniformPopularityCacheOnlyNeverWins) {
  // The paper's Fig. 9 claim restated for pure cache splits: with uniform
  // popularity, trading DRAM for cache devices only loses streams. (The
  // *hybrid* planner may still buy devices — for buffering, or to add
  // bandwidth once buffering removes the DRAM limit.)
  auto config = MakeConfig({0.5, 0.5}, 100 * kKBps);
  auto none = EvaluateHybridSplit(config, 0, 0);
  ASSERT_TRUE(none.ok());
  for (std::int64_t k = 1; k <= 4; ++k) {
    auto cached = EvaluateHybridSplit(config, 0, k);
    ASSERT_TRUE(cached.ok());
    EXPECT_LE(cached.value().total_streams, none.value().total_streams)
        << "k=" << k;
  }
}

TEST(HybridTest, HighSkewUsesCache) {
  auto plan = PlanHybrid(MakeConfig({0.01, 0.99}, 100 * kKBps));
  ASSERT_TRUE(plan.ok());
  EXPECT_GE(plan.value().k_cache, 1);
}

TEST(HybridTest, BufferingHelpsDiskSideStreams) {
  // At 1 MB/s the no-buffer system is DRAM-limited well below the disk's
  // 299-stream bandwidth bound; two buffering devices (enough for
  // Theorem 2's 2x bandwidth requirement) lift it to the bandwidth
  // bound even though they cost $20 of DRAM.
  auto config = MakeConfig({0.2, 0.8}, 1 * kMBps);
  auto without = EvaluateHybridSplit(config, 0, 1);
  auto with_buffer = EvaluateHybridSplit(config, 2, 1);
  ASSERT_TRUE(without.ok());
  ASSERT_TRUE(with_buffer.ok());
  EXPECT_GT(with_buffer.value().total_streams,
            without.value().total_streams);
}

TEST(HybridTest, SplitCostsRespectBudget) {
  auto config = MakeConfig({0.1, 0.9}, 100 * kKBps);
  // 100$ budget, $10/device: 11 devices never fit.
  EXPECT_EQ(EvaluateHybridSplit(config, 6, 5).status().code(),
            StatusCode::kInfeasible);
}

TEST(HybridTest, NegativeSplitRejected) {
  auto config = MakeConfig({0.1, 0.9}, 100 * kKBps);
  EXPECT_EQ(EvaluateHybridSplit(config, -1, 0).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace memstream::model
