#include "model/timecycle.h"

#include <gtest/gtest.h>

#include "device/device_catalog.h"
#include "model/stream.h"

namespace memstream::model {
namespace {

DeviceProfile FutureDiskAt(std::int64_t n) {
  auto disk = device::DiskDrive::Create(device::FutureDisk2007());
  EXPECT_TRUE(disk.ok());
  return DiskProfile(disk.value(), n);
}

DeviceProfile FlatProfile(BytesPerSecond rate, Seconds latency) {
  DeviceProfile p;
  p.rate = rate;
  p.latency = latency;
  return p;
}

TEST(Theorem1Test, ClosedFormMatchesFixedPoint) {
  // Theorem 1 is the fixed point of T = N (L + S/R), S = B*T. Verify the
  // closed form satisfies both equations.
  const auto dev = FlatProfile(300 * kMBps, 4.3 * kMillisecond);
  const std::int64_t n = 100;
  const BytesPerSecond b = 1 * kMBps;
  auto s = PerStreamBufferSize(n, b, dev);
  ASSERT_TRUE(s.ok());
  const Seconds t = s.value() / b;
  EXPECT_NEAR(t,
              static_cast<double>(n) * (dev.latency + s.value() / dev.rate),
              1e-9);
}

TEST(Theorem1Test, InfeasibleAtBandwidthBound) {
  const auto dev = FlatProfile(300 * kMBps, 4.3 * kMillisecond);
  // 300 streams at 1 MB/s saturate a 300 MB/s disk exactly.
  EXPECT_FALSE(PerStreamBufferSize(300, 1 * kMBps, dev).ok());
  EXPECT_TRUE(PerStreamBufferSize(299, 1 * kMBps, dev).ok());
  EXPECT_EQ(PerStreamBufferSize(300, 1 * kMBps, dev).status().code(),
            StatusCode::kInfeasible);
}

TEST(Theorem1Test, BufferDivergesNearSaturation) {
  const auto dev = FlatProfile(300 * kMBps, 4.3 * kMillisecond);
  auto s290 = PerStreamBufferSize(290, 1 * kMBps, dev);
  auto s299 = PerStreamBufferSize(299, 1 * kMBps, dev);
  ASSERT_TRUE(s290.ok());
  ASSERT_TRUE(s299.ok());
  EXPECT_GT(s299.value(), 5 * s290.value());
}

TEST(Theorem1Test, MonotoneIncreasingInN) {
  const auto dev = FlatProfile(300 * kMBps, 4.3 * kMillisecond);
  Bytes prev = 0;
  for (std::int64_t n = 1; n <= 250; n += 10) {
    auto s = TotalBufferSize(n, 1 * kMBps, dev);
    ASSERT_TRUE(s.ok());
    EXPECT_GT(s.value(), prev);
    prev = s.value();
  }
}

TEST(Theorem1Test, PaperScaleCheck10KBs) {
  // §5.1.1: without MEMS, ~1 TB DRAM for a fully-utilized FutureDisk at
  // 10 KB/s streams, ~1 GB at 10 MB/s (order of magnitude check).
  const std::int64_t n_mp3 = 29000;  // ~97% of the 30000 bandwidth bound
  auto total_mp3 = TotalBufferSize(n_mp3, 10 * kKBps, FutureDiskAt(n_mp3));
  ASSERT_TRUE(total_mp3.ok());
  EXPECT_GT(total_mp3.value(), 0.2 * kTB);
  EXPECT_LT(total_mp3.value(), 5.0 * kTB);

  const std::int64_t n_hdtv = 29;
  auto total_hdtv =
      TotalBufferSize(n_hdtv, 10 * kMBps, FutureDiskAt(n_hdtv));
  ASSERT_TRUE(total_hdtv.ok());
  EXPECT_GT(total_hdtv.value(), 0.2 * kGB);
  EXPECT_LT(total_hdtv.value(), 5.0 * kGB);
}

TEST(Theorem1Test, ElevatorLatencyShrinksBuffer) {
  // The scheduler-determined latency falls with N, so the real system
  // needs less DRAM than the naive average-latency estimate.
  const std::int64_t n = 1000;
  auto elevator = TotalBufferSize(n, 100 * kKBps, FutureDiskAt(n));
  auto naive = TotalBufferSize(
      n, 100 * kKBps, FlatProfile(300 * kMBps, 4.3 * kMillisecond));
  ASSERT_TRUE(elevator.ok());
  ASSERT_TRUE(naive.ok());
  EXPECT_LT(elevator.value(), naive.value());
}

TEST(MaxStreamsBandwidthBoundTest, StrictInequality) {
  EXPECT_EQ(MaxStreamsBandwidthBound(300 * kMBps, 1 * kMBps), 299);
  EXPECT_EQ(MaxStreamsBandwidthBound(300 * kMBps, 10 * kMBps), 29);
  EXPECT_EQ(MaxStreamsBandwidthBound(300 * kMBps, 10 * kKBps), 29999);
  EXPECT_EQ(MaxStreamsBandwidthBound(300 * kMBps, 400 * kMBps), 0);
}

TEST(IoCycleTest, CycleEqualsBufferOverRate) {
  const auto dev = FlatProfile(320 * kMBps, 0.86 * kMillisecond);
  auto s = PerStreamBufferSize(50, 1 * kMBps, dev);
  auto t = IoCycleLength(50, 1 * kMBps, dev);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ(t.value(), s.value() / (1 * kMBps));
}

TEST(MaxStreamsWithBufferTest, RespectsBudget) {
  auto disk = device::DiskDrive::Create(device::FutureDisk2007());
  ASSERT_TRUE(disk.ok());
  const auto latency = DiskLatencyFn(disk.value());
  const Bytes budget = 5 * kGB;
  const auto n =
      MaxStreamsWithBuffer(budget, 10 * kKBps, 300 * kMBps, latency);
  ASSERT_GT(n, 0);
  DeviceProfile at_n = FlatProfile(300 * kMBps, latency(n));
  auto used = TotalBufferSize(n, 10 * kKBps, at_n);
  ASSERT_TRUE(used.ok());
  EXPECT_LE(used.value(), budget);
  // One more stream must not fit.
  DeviceProfile at_n1 = FlatProfile(300 * kMBps, latency(n + 1));
  auto over = TotalBufferSize(n + 1, 10 * kKBps, at_n1);
  if (over.ok()) {
    EXPECT_GT(over.value(), budget);
  }
}

TEST(MaxStreamsWithBufferTest, HighBitRateIsBandwidthLimited) {
  auto disk = device::DiskDrive::Create(device::FutureDisk2007());
  ASSERT_TRUE(disk.ok());
  // §5.1.3: at 10 MB/s even 5 GB DRAM is under-utilized; the bound is the
  // disk bandwidth (29 streams), needing only ~1.5 GB.
  const auto n = MaxStreamsWithBuffer(5 * kGB, 10 * kMBps, 300 * kMBps,
                                      DiskLatencyFn(disk.value()));
  EXPECT_EQ(n, 29);
}

TEST(MaxStreamsWithBufferTest, ZeroBudgetZeroStreams) {
  EXPECT_EQ(MaxStreamsWithBuffer(0, 1 * kMBps, 300 * kMBps,
                                 [](std::int64_t) { return 4e-3; }),
            0);
}

TEST(VbrTest, CushionAddsOnTopOfCbrSizing) {
  const auto dev = FlatProfile(300 * kMBps, 4.3 * kMillisecond);
  const VbrProfile vbr{"vbr", 1 * kMBps, 1.5 * kMBps};
  auto cbr = PerStreamBufferSize(100, 1 * kMBps, dev);
  auto with_cushion = PerStreamBufferSizeVbr(100, vbr, dev);
  ASSERT_TRUE(cbr.ok());
  ASSERT_TRUE(with_cushion.ok());
  const Seconds cycle = cbr.value() / (1 * kMBps);
  EXPECT_NEAR(with_cushion.value(),
              cbr.value() + 0.5 * kMBps * cycle, 1e-6);
}

TEST(VbrTest, CbrProfileDegeneratesToTheorem1) {
  const auto dev = FlatProfile(300 * kMBps, 4.3 * kMillisecond);
  const VbrProfile cbr_like{"cbr", 1 * kMBps, 1 * kMBps};
  auto plain = PerStreamBufferSize(50, 1 * kMBps, dev);
  auto vbr = PerStreamBufferSizeVbr(50, cbr_like, dev);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(vbr.ok());
  EXPECT_DOUBLE_EQ(plain.value(), vbr.value());
}

TEST(VbrTest, InvalidProfileRejected) {
  const auto dev = FlatProfile(300 * kMBps, 4.3 * kMillisecond);
  const VbrProfile bad{"bad", 1 * kMBps, 0.5 * kMBps};
  EXPECT_FALSE(PerStreamBufferSizeVbr(50, bad, dev).ok());
  // Saturation at the mean rate is still infeasible.
  const VbrProfile heavy{"heavy", 10 * kMBps, 12 * kMBps};
  EXPECT_FALSE(PerStreamBufferSizeVbr(30, heavy, dev).ok());
}

TEST(CanSustainTest, Boundary) {
  const auto dev = FlatProfile(100 * kMBps, 1 * kMillisecond);
  EXPECT_TRUE(CanSustain(99, 1 * kMBps, dev));
  EXPECT_FALSE(CanSustain(100, 1 * kMBps, dev));
}

TEST(Theorem1Test, InvalidInputsRejected) {
  const auto dev = FlatProfile(100 * kMBps, 1 * kMillisecond);
  EXPECT_FALSE(PerStreamBufferSize(0, 1 * kMBps, dev).ok());
  EXPECT_FALSE(PerStreamBufferSize(10, 0, dev).ok());
  EXPECT_FALSE(
      PerStreamBufferSize(10, 1 * kMBps, FlatProfile(0, 1e-3)).ok());
}

}  // namespace
}  // namespace memstream::model
