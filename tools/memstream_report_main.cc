// memstream-report: merges one-or-many run.report.json documents,
// metrics CSV snapshots, and BENCH_sweeps.json files into a combined
// Markdown report and/or a standalone single-file HTML dashboard.
//
//   memstream-report run1.json run2.json BENCH_sweeps.json
//       -o dashboard.html --md report.md --title "nightly"
//
// Differential mode aligns two run bundles and renders only the deltas
// (metrics, SLO attainment, per-stream outcomes, perf records):
//
//   memstream-report --diff clean.report.json faulted.report.json
//       [--threshold 0.02] [-o delta.html] [--md delta.md]
//
// Inputs are classified by content, not filename. With no -o/--md the
// Markdown output goes to stdout. Exit status: 0 on success, 1 on usage
// errors, 2 when every input failed to load.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/report_merge.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <input>... [-o out.html] [--md out.md] "
               "[--title <title>]\n"
               "       %s --diff <runA> <runB> [--threshold <rel>] "
               "[-o out.html] [--md out.md] [--title <title>]\n"
               "  inputs: run.report.json / metrics CSV / "
               "BENCH_sweeps.json (content-sniffed)\n"
               "  --diff: compare two inputs (A vs B) and render only "
               "significant deltas\n"
               "  --threshold: relative significance cutoff for --diff "
               "(default 0.02)\n",
               argv0, argv0);
  return 1;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

int RunDiff(const std::vector<std::string>& inputs,
            const std::string& html_path, const std::string& md_path,
            const std::string& title,
            const memstream::obs::DiffOptions& options) {
  memstream::obs::ReportBundle bundle_a;
  memstream::obs::ReportBundle bundle_b;
  bool ok = true;
  // First input (plus any before the midpoint) is side A, rest side B —
  // the common case is exactly two files.
  const std::size_t split = inputs.size() / 2;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    auto* bundle = i < split ? &bundle_a : &bundle_b;
    const auto status = memstream::obs::LoadReportInput(inputs[i], bundle);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s: %s\n", inputs[i].c_str(),
                   status.message().c_str());
      ok = false;
    }
  }
  if (!ok) return 2;

  std::string label_a = inputs.front();
  std::string label_b = inputs.back();
  if (split > 1) {
    label_a += " (+" + std::to_string(split - 1) + " more)";
    label_b = inputs[split] + " (+" +
              std::to_string(inputs.size() - split - 1) + " more)";
  }
  const memstream::obs::BundleDiff diff = memstream::obs::ComputeBundleDiff(
      bundle_a, bundle_b, options, label_a, label_b);

  if (!html_path.empty()) {
    const std::string html = memstream::obs::RenderHtmlDiff(diff, title);
    if (!WriteFile(html_path, html)) {
      std::fprintf(stderr, "error: cannot write %s\n", html_path.c_str());
      return 2;
    }
    std::fprintf(stderr, "wrote %s (%zu bytes)\n", html_path.c_str(),
                 html.size());
  }
  const std::string markdown = memstream::obs::RenderMarkdownDiff(diff, title);
  if (!md_path.empty()) {
    if (!WriteFile(md_path, markdown)) {
      std::fprintf(stderr, "error: cannot write %s\n", md_path.c_str());
      return 2;
    }
    std::fprintf(stderr, "wrote %s (%zu bytes)\n", md_path.c_str(),
                 markdown.size());
  } else if (html_path.empty()) {
    std::cout << markdown;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  std::string html_path;
  std::string md_path;
  std::string title;
  bool diff_mode = false;
  memstream::obs::DiffOptions diff_options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" || arg == "--html") {
      if (++i >= argc) return Usage(argv[0]);
      html_path = argv[i];
    } else if (arg == "--md" || arg == "--markdown") {
      if (++i >= argc) return Usage(argv[0]);
      md_path = argv[i];
    } else if (arg == "--title") {
      if (++i >= argc) return Usage(argv[0]);
      title = argv[i];
    } else if (arg == "--diff") {
      diff_mode = true;
    } else if (arg == "--threshold") {
      if (++i >= argc) return Usage(argv[0]);
      char* end = nullptr;
      diff_options.rel_threshold = std::strtod(argv[i], &end);
      if (end == nullptr || *end != '\0' ||
          diff_options.rel_threshold < 0) {
        std::fprintf(stderr, "bad --threshold: %s\n", argv[i]);
        return Usage(argv[0]);
      }
    } else if (arg == "-h" || arg == "--help") {
      Usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return Usage(argv[0]);
    } else {
      inputs.push_back(arg);
    }
  }
  if (title.empty()) {
    title = diff_mode ? "memstream run diff" : "memstream run report";
  }
  if (diff_mode) {
    if (inputs.size() < 2) {
      std::fprintf(stderr, "--diff needs two inputs (A and B)\n");
      return Usage(argv[0]);
    }
    return RunDiff(inputs, html_path, md_path, title, diff_options);
  }
  if (inputs.empty()) return Usage(argv[0]);

  memstream::obs::ReportBundle bundle;
  std::size_t loaded = 0;
  for (const auto& path : inputs) {
    const auto status = memstream::obs::LoadReportInput(path, &bundle);
    if (status.ok()) {
      ++loaded;
    } else {
      std::fprintf(stderr, "warning: %s: %s\n", path.c_str(),
                   status.message().c_str());
    }
  }
  if (loaded == 0) {
    std::fprintf(stderr, "error: no input could be loaded\n");
    return 2;
  }

  if (!html_path.empty()) {
    const std::string html =
        memstream::obs::RenderHtmlDashboard(bundle, title);
    if (!WriteFile(html_path, html)) {
      std::fprintf(stderr, "error: cannot write %s\n", html_path.c_str());
      return 2;
    }
    std::fprintf(stderr, "wrote %s (%zu bytes)\n", html_path.c_str(),
                 html.size());
  }
  const std::string markdown =
      memstream::obs::RenderMarkdownReport(bundle, title);
  if (!md_path.empty()) {
    if (!WriteFile(md_path, markdown)) {
      std::fprintf(stderr, "error: cannot write %s\n", md_path.c_str());
      return 2;
    }
    std::fprintf(stderr, "wrote %s (%zu bytes)\n", md_path.c_str(),
                 markdown.size());
  } else if (html_path.empty()) {
    std::cout << markdown;
  }
  return 0;
}
