// memstream-report: merges one-or-many run.report.json documents,
// metrics CSV snapshots, and BENCH_sweeps.json files into a combined
// Markdown report and/or a standalone single-file HTML dashboard.
//
//   memstream-report run1.json run2.json BENCH_sweeps.json
//       -o dashboard.html --md report.md --title "nightly"
//
// Inputs are classified by content, not filename. With no -o/--md the
// Markdown report goes to stdout. Exit status: 0 on success, 1 on usage
// errors, 2 when every input failed to load.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/report_merge.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <input>... [-o out.html] [--md out.md] "
               "[--title <title>]\n"
               "  inputs: run.report.json / metrics CSV / "
               "BENCH_sweeps.json (content-sniffed)\n",
               argv0);
  return 1;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  std::string html_path;
  std::string md_path;
  std::string title = "memstream run report";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" || arg == "--html") {
      if (++i >= argc) return Usage(argv[0]);
      html_path = argv[i];
    } else if (arg == "--md" || arg == "--markdown") {
      if (++i >= argc) return Usage(argv[0]);
      md_path = argv[i];
    } else if (arg == "--title") {
      if (++i >= argc) return Usage(argv[0]);
      title = argv[i];
    } else if (arg == "-h" || arg == "--help") {
      Usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return Usage(argv[0]);
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return Usage(argv[0]);

  memstream::obs::ReportBundle bundle;
  std::size_t loaded = 0;
  for (const auto& path : inputs) {
    const auto status = memstream::obs::LoadReportInput(path, &bundle);
    if (status.ok()) {
      ++loaded;
    } else {
      std::fprintf(stderr, "warning: %s: %s\n", path.c_str(),
                   status.message().c_str());
    }
  }
  if (loaded == 0) {
    std::fprintf(stderr, "error: no input could be loaded\n");
    return 2;
  }

  if (!html_path.empty()) {
    const std::string html =
        memstream::obs::RenderHtmlDashboard(bundle, title);
    if (!WriteFile(html_path, html)) {
      std::fprintf(stderr, "error: cannot write %s\n", html_path.c_str());
      return 2;
    }
    std::fprintf(stderr, "wrote %s (%zu bytes)\n", html_path.c_str(),
                 html.size());
  }
  const std::string markdown =
      memstream::obs::RenderMarkdownReport(bundle, title);
  if (!md_path.empty()) {
    if (!WriteFile(md_path, markdown)) {
      std::fprintf(stderr, "error: cannot write %s\n", md_path.c_str());
      return 2;
    }
    std::fprintf(stderr, "wrote %s (%zu bytes)\n", md_path.c_str(),
                 markdown.size());
  } else if (html_path.empty()) {
    std::cout << markdown;
  }
  return 0;
}
