// memstream-perf: the perf-trajectory harness. Runs the sweep benches
// and the google-benchmark microbenchmarks K times each, records
// median-of-K wall clock / events-per-second (plus p50/p99 and
// allocs/op where measured) into bench_results/BENCH_trajectory.json,
// and optionally gates against committed baselines:
//
//   memstream-perf --bench-dir build/bench --repeats 3
//   memstream-perf --check --baseline-dir bench/baselines --tolerance 1.5
//   memstream-perf --update-baseline
//   memstream-perf --profile-overhead fig9_cache_throughput
//
// MEMSTREAM_SMOKE is honored uniformly: when set (or with --smoke) the
// child benches trim themselves exactly as the ctest bench-smoke label
// does, and records/baselines are keyed smoke=true so full and smoke
// histories never mix. Exit status: 0 ok, 1 usage, 2 bench failures,
// 3 baseline regression.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "exp/perf_trajectory.h"
#include "obs/json_parser.h"
#include "obs/metrics.h"
#include "obs/metrics_http.h"

namespace {

namespace fs = std::filesystem;
using memstream::exp::PerfCheck;
using memstream::exp::PerfRecord;

/// The sweep benches the harness drives (every bench that RecordSweep()s
/// into BENCH_sweeps.json). Kept in build order; --benches overrides.
const char* const kSweepBenches[] = {
    "fig4_fig5_schedules",  "fig6_dram_requirement",
    "fig7_cost_reduction",  "fig8_total_cost_reduction",
    "fig9_cache_throughput", "fig10_cache_size_sweep",
    "sim_validation",       "ablation_hybrid",
    "ablation_sensitivity", "ablation_generations",
    "ablation_placement",   "ablation_edf",
    "ablation_scaleout",    "ablation_faults",
    "ablation_millionfarm",
};

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --bench-dir DIR     bench binaries (default: <argv0>/../bench)\n"
      "  --workdir DIR       where bench_results/ lands (default: .)\n"
      "  --out FILE          trajectory file (default:\n"
      "                      <workdir>/bench_results/BENCH_trajectory.json)\n"
      "  --repeats K         runs per bench (default: 3; 1 under smoke\n"
      "                      unless --check/--update-baseline)\n"
      "  --benches a,b,c     subset of sweep benches to run\n"
      "  --skip-micro        skip the google-benchmark microbenchmarks\n"
      "  --smoke             force MEMSTREAM_SMOKE=1 in the children\n"
      "  --check             compare against baselines; exit 3 on regression\n"
      "  --baseline-dir DIR  committed baselines (default: bench/baselines)\n"
      "  --tolerance X       allowed slowdown factor for --check (default 1.5)\n"
      "  --update-baseline   rewrite the baseline file from this run\n"
      "  --profile-overhead BENCH\n"
      "                      measure PROF_SCOPE overhead on one bench\n"
      "  --http PORT         serve /metrics progress while running\n",
      argv0);
  return 1;
}

struct Options {
  std::string bench_dir;
  std::string workdir = ".";
  std::string out;
  std::string baseline_dir = "bench/baselines";
  std::vector<std::string> benches{std::begin(kSweepBenches),
                                   std::end(kSweepBenches)};
  std::string overhead_bench;
  int repeats = 0;  ///< 0 = default (3 full, 1 smoke)
  double tolerance = 1.5;
  int http_port = -1;
  bool skip_micro = false;
  bool smoke = false;
  bool check = false;
  bool update_baseline = false;
};

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::string ShellQuote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

/// Runs `binary args` from inside `workdir`, appending its output to the
/// harness log. Returns the wall-clock seconds, or < 0 on failure.
double RunBench(const Options& opt, const std::string& binary,
                const std::string& args, const std::string& env_prefix) {
  const std::string log =
      (fs::path(opt.workdir) / "bench_results" / "perf_harness.log").string();
  std::string cmd = "cd " + ShellQuote(opt.workdir) + " && " + env_prefix +
                    ShellQuote(binary);
  if (!args.empty()) cmd += " " + args;
  cmd += " >> " + ShellQuote(log) + " 2>&1";
  const auto start = std::chrono::steady_clock::now();
  const int rc = std::system(cmd.c_str());
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return rc == 0 ? wall : -1.0;
}

/// events_per_sec for `bench` from <workdir>/bench_results/
/// BENCH_sweeps.json; 0 when absent (analytic-only bench or parse miss).
double SweepEventsPerSec(const Options& opt, const std::string& bench) {
  const fs::path path =
      fs::path(opt.workdir) / "bench_results" / "BENCH_sweeps.json";
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return 0;
  std::ostringstream content;
  content << in.rdbuf();
  bool ok = false;
  const auto doc = memstream::obs::ParseJson(content.str(), &ok);
  if (!ok || !doc.is_array()) return 0;
  for (const auto& v : doc.array) {
    if (v.is_object() && v.Str("bench") == bench) {
      return v.Num("events_per_sec", 0);
    }
  }
  return 0;
}

PerfRecord MakeRecord(const Options& opt, const std::string& bench,
                      const std::string& kind, int repeats,
                      std::vector<double> walls, double events_per_sec,
                      double allocs_per_event) {
  PerfRecord r;
  r.bench = bench;
  r.kind = kind;
  r.smoke = opt.smoke;
  r.unix_time = static_cast<double>(std::time(nullptr));
  r.repeats = repeats;
  r.wall_seconds = memstream::exp::Median(walls);
  r.wall_p50 = memstream::exp::Percentile(walls, 0.5);
  r.wall_p99 = memstream::exp::Percentile(walls, 0.99);
  r.events_per_sec = events_per_sec;
  r.allocs_per_event = allocs_per_event;
  return r;
}

double TimeUnitSeconds(const std::string& unit) {
  if (unit == "s") return 1;
  if (unit == "ms") return 1e-3;
  if (unit == "us") return 1e-6;
  return 1e-9;  // ns, the google-benchmark default
}

/// Parses a --benchmark_out JSON document into per-benchmark records.
std::vector<PerfRecord> ParseMicroOut(const Options& opt,
                                      const std::string& text, int repeats) {
  std::vector<PerfRecord> out;
  bool ok = false;
  const auto doc = memstream::obs::ParseJson(text, &ok);
  if (!ok || !doc.is_object()) return out;
  const auto* benches = doc.Find("benchmarks");
  if (benches == nullptr || !benches->is_array()) return out;

  struct Agg {
    std::vector<double> walls;
    std::vector<double> items_per_sec;
    std::vector<double> allocs;
  };
  std::map<std::string, Agg> by_name;
  std::vector<std::string> order;
  for (const auto& b : benches->array) {
    if (!b.is_object()) continue;
    // Keep raw iterations; skip the _mean/_median/_stddev aggregates a
    // repetitions>1 run also emits.
    const std::string run_type = b.Str("run_type");
    if (!run_type.empty() && run_type != "iteration") continue;
    const std::string name = b.Str("name");
    if (name.empty()) continue;
    auto [it, inserted] = by_name.try_emplace(name);
    if (inserted) order.push_back(name);
    Agg& agg = it->second;
    agg.walls.push_back(b.Num("real_time", 0) *
                        TimeUnitSeconds(b.Str("time_unit")));
    if (const auto* ips = b.Find("items_per_second"); ips != nullptr) {
      agg.items_per_sec.push_back(ips->number);
    }
    if (const auto* allocs = b.Find("allocs_per_op"); allocs != nullptr) {
      agg.allocs.push_back(allocs->number);
    }
  }
  for (const auto& name : order) {
    Agg& agg = by_name[name];
    out.push_back(MakeRecord(
        opt, name, "micro", repeats, agg.walls,
        memstream::exp::Median(agg.items_per_sec),
        agg.allocs.empty() ? -1 : memstream::exp::Median(agg.allocs)));
  }
  return out;
}

/// Live-progress registry served over /metrics while the harness runs.
struct Progress {
  std::mutex mu;
  memstream::obs::MetricsRegistry registry;

  void Update(int done, int total, double last_wall) {
    std::lock_guard<std::mutex> lock(mu);
    registry.gauge("perf.benches_total")->Set(total);
    registry.gauge("perf.benches_done")->Set(done);
    registry.gauge("perf.last_bench_wall_seconds")->Set(last_wall);
  }
  std::string Render() {
    std::lock_guard<std::mutex> lock(mu);
    return registry.ToPrometheusText();
  }
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](std::string* into) {
      if (++i >= argc) return false;
      *into = argv[i];
      return true;
    };
    std::string val;
    if (arg == "--bench-dir" && next(&val)) {
      opt.bench_dir = val;
    } else if (arg == "--workdir" && next(&val)) {
      opt.workdir = val;
    } else if (arg == "--out" && next(&val)) {
      opt.out = val;
    } else if (arg == "--baseline-dir" && next(&val)) {
      opt.baseline_dir = val;
    } else if (arg == "--benches" && next(&val)) {
      opt.benches = SplitCommas(val);
    } else if (arg == "--repeats" && next(&val)) {
      opt.repeats = std::atoi(val.c_str());
    } else if (arg == "--tolerance" && next(&val)) {
      opt.tolerance = std::atof(val.c_str());
    } else if (arg == "--profile-overhead" && next(&val)) {
      opt.overhead_bench = val;
    } else if (arg == "--http" && next(&val)) {
      opt.http_port = std::atoi(val.c_str());
    } else if (arg == "--skip-micro") {
      opt.skip_micro = true;
    } else if (arg == "--smoke") {
      opt.smoke = true;
    } else if (arg == "--check") {
      opt.check = true;
    } else if (arg == "--update-baseline") {
      opt.update_baseline = true;
    } else if (arg == "-h" || arg == "--help") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }
  if (std::getenv("MEMSTREAM_SMOKE") != nullptr) opt.smoke = true;
  // Smoke sweeps finish in milliseconds, so a single sample's events/sec
  // is scheduler noise; comparisons (--check, --update-baseline) always
  // get a median-of-K even in smoke mode.
  if (opt.repeats <= 0) {
    const bool comparing = opt.check || opt.update_baseline;
    opt.repeats = (opt.smoke && !comparing) ? 1 : 3;
  }
  if (opt.bench_dir.empty()) {
    opt.bench_dir = (fs::path(argv[0]).parent_path() / ".." / "bench")
                        .lexically_normal()
                        .string();
    if (opt.bench_dir.empty()) opt.bench_dir = ".";
  }
  {
    // Bench binaries run after `cd workdir`, so the bench dir must not
    // depend on the invocation directory.
    std::error_code abs_ec;
    const fs::path abs = fs::absolute(opt.bench_dir, abs_ec);
    if (!abs_ec) opt.bench_dir = abs.lexically_normal().string();
  }
  if (opt.out.empty()) {
    opt.out = (fs::path(opt.workdir) / "bench_results" /
               "BENCH_trajectory.json")
                  .string();
  }
  std::error_code ec;
  fs::create_directories(fs::path(opt.workdir) / "bench_results", ec);

  const std::string env_prefix = opt.smoke ? "MEMSTREAM_SMOKE=1 " : "";

  // --profile-overhead: one bench, plain vs MEMSTREAM_PROFILE=1, report
  // the median-wall overhead of the enabled profiler. Informational.
  if (!opt.overhead_bench.empty()) {
    const std::string bin =
        (fs::path(opt.bench_dir) / opt.overhead_bench).string();
    std::vector<double> plain, profiled;
    for (int k = 0; k < opt.repeats; ++k) {
      const double w0 = RunBench(opt, bin, "", env_prefix +
                                 "MEMSTREAM_PROFILE=0 ");
      const double w1 = RunBench(opt, bin, "", env_prefix +
                                 "MEMSTREAM_PROFILE=1 ");
      if (w0 < 0 || w1 < 0) {
        std::fprintf(stderr, "error: %s failed; see the harness log\n",
                     bin.c_str());
        return 2;
      }
      plain.push_back(w0);
      profiled.push_back(w1);
    }
    const double base = memstream::exp::Median(plain);
    const double with = memstream::exp::Median(profiled);
    const double pct = base > 0 ? (with / base - 1.0) * 100.0 : 0;
    std::printf(
        "profile-overhead %s: plain %.3f s, profiled %.3f s -> %+.2f%%\n",
        opt.overhead_bench.c_str(), base, with, pct);
    return 0;
  }

  memstream::obs::MetricsHttpOptions hopt;
  if (opt.http_port >= 0) hopt.port = opt.http_port;
  memstream::obs::MetricsHttpServer http(hopt);
  Progress progress;
  if (opt.http_port >= 0) {
    http.SetMetricsProvider([&progress] { return progress.Render(); });
    const auto st = http.Start();
    if (!st.ok()) {
      std::fprintf(stderr, "warning: /metrics server: %s\n",
                   st.message().c_str());
    } else {
      std::fprintf(stderr, "serving /metrics on port %d\n", http.port());
    }
  }

  const int total = static_cast<int>(opt.benches.size()) +
                    (opt.skip_micro ? 0 : 1);
  int done = 0;
  int failures = 0;
  std::vector<PerfRecord> records;
  progress.Update(done, total, 0);

  for (const auto& bench : opt.benches) {
    const std::string bin = (fs::path(opt.bench_dir) / bench).string();
    if (!fs::exists(bin)) {
      std::fprintf(stderr, "error: bench binary not found: %s\n",
                   bin.c_str());
      ++failures;
      continue;
    }
    std::vector<double> walls;
    std::vector<double> eps;
    for (int k = 0; k < opt.repeats; ++k) {
      const double wall = RunBench(opt, bin, "", env_prefix);
      if (wall < 0) break;
      walls.push_back(wall);
      eps.push_back(SweepEventsPerSec(opt, bench));
    }
    if (static_cast<int>(walls.size()) < opt.repeats) {
      std::fprintf(stderr, "error: %s failed; see the harness log\n",
                   bench.c_str());
      ++failures;
      continue;
    }
    records.push_back(MakeRecord(opt, bench, "sweep", opt.repeats, walls,
                                 memstream::exp::Median(eps), -1));
    const PerfRecord& r = records.back();
    std::printf("%-28s wall %.3f s  events/s %.0f  (K=%d)\n", bench.c_str(),
                r.wall_seconds, r.events_per_sec, opt.repeats);
    progress.Update(++done, total, r.wall_seconds);
  }

  if (!opt.skip_micro) {
    const std::string bin =
        (fs::path(opt.bench_dir) / "micro_benchmarks").string();
    const fs::path micro_out =
        fs::path(opt.workdir) / "bench_results" / "micro_out.json";
    if (!fs::exists(bin)) {
      std::fprintf(stderr, "error: bench binary not found: %s\n",
                   bin.c_str());
      ++failures;
    } else {
      const std::string args =
          "--benchmark_out=" + ShellQuote(micro_out.string()) +
          " --benchmark_out_format=json --benchmark_repetitions=" +
          std::to_string(opt.repeats);
      const double wall = RunBench(opt, bin, args, env_prefix);
      if (wall < 0) {
        std::fprintf(stderr,
                     "error: micro_benchmarks failed; see the harness log\n");
        ++failures;
      } else {
        std::ifstream in(micro_out, std::ios::binary);
        std::ostringstream content;
        content << in.rdbuf();
        const auto micro = ParseMicroOut(opt, content.str(), opt.repeats);
        for (const auto& r : micro) {
          std::printf("%-44s %.0f ns/op", r.bench.c_str(),
                      r.wall_seconds * 1e9);
          if (r.allocs_per_event >= 0) {
            std::printf("  allocs/op %.2f", r.allocs_per_event);
          }
          std::printf("\n");
        }
        records.insert(records.end(), micro.begin(), micro.end());
        progress.Update(++done, total, wall);
      }
    }
  }

  if (records.empty()) {
    std::fprintf(stderr, "error: no bench produced a record\n");
    return 2;
  }

  const auto append =
      memstream::exp::AppendPerfRecords(opt.out, records);
  if (!append.ok()) {
    std::fprintf(stderr, "error: %s\n", append.message().c_str());
    return 2;
  }
  std::printf("appended %zu record(s) to %s\n", records.size(),
              opt.out.c_str());

  const std::string baseline_file =
      (fs::path(opt.baseline_dir) / (opt.smoke ? "smoke.json" : "full.json"))
          .string();
  if (opt.update_baseline) {
    fs::create_directories(opt.baseline_dir, ec);
    const auto write =
        memstream::exp::WritePerfRecords(baseline_file, records);
    if (!write.ok()) {
      std::fprintf(stderr, "error: %s\n", write.message().c_str());
      return 2;
    }
    std::printf("baseline updated: %s\n", baseline_file.c_str());
  }

  int exit_code = failures > 0 ? 2 : 0;
  if (opt.check) {
    auto baseline = memstream::exp::LoadPerfRecords(baseline_file);
    if (!baseline.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   baseline.status().message().c_str());
      return 2;
    }
    if (baseline.value().empty()) {
      std::fprintf(stderr, "error: no baseline at %s (run with "
                   "--update-baseline first)\n", baseline_file.c_str());
      return 2;
    }
    const auto checks = memstream::exp::CheckAgainstBaseline(
        records, baseline.value(), opt.tolerance);
    int regressions = 0;
    for (const auto& c : checks) {
      if (!c.found_baseline) continue;
      if (!c.ok) ++regressions;
      std::printf("%s %-44s %s\n", c.ok ? "  ok  " : "REGRESS",
                  c.bench.c_str(), c.detail.c_str());
    }
    if (regressions > 0) {
      std::fprintf(stderr, "%d perf regression(s) beyond x%.2f\n",
                   regressions, opt.tolerance);
      exit_code = 3;
    } else {
      std::printf("perf check passed (tolerance x%.2f)\n", opt.tolerance);
    }
  }
  http.Stop();
  return exit_code;
}
