# Empty dependencies file for pvr_server.
# This may be replaced when dependencies are built.
