file(REMOVE_RECURSE
  "CMakeFiles/pvr_server.dir/pvr_server.cpp.o"
  "CMakeFiles/pvr_server.dir/pvr_server.cpp.o.d"
  "pvr_server"
  "pvr_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvr_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
