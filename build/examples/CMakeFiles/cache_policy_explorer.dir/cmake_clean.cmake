file(REMOVE_RECURSE
  "CMakeFiles/cache_policy_explorer.dir/cache_policy_explorer.cpp.o"
  "CMakeFiles/cache_policy_explorer.dir/cache_policy_explorer.cpp.o.d"
  "cache_policy_explorer"
  "cache_policy_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_policy_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
