# Empty compiler generated dependencies file for cache_policy_explorer.
# This may be replaced when dependencies are built.
