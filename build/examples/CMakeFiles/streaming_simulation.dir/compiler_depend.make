# Empty compiler generated dependencies file for streaming_simulation.
# This may be replaced when dependencies are built.
