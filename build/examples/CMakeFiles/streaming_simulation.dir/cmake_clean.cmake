file(REMOVE_RECURSE
  "CMakeFiles/streaming_simulation.dir/streaming_simulation.cpp.o"
  "CMakeFiles/streaming_simulation.dir/streaming_simulation.cpp.o.d"
  "streaming_simulation"
  "streaming_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
