file(REMOVE_RECURSE
  "CMakeFiles/vod_capacity_planner.dir/vod_capacity_planner.cpp.o"
  "CMakeFiles/vod_capacity_planner.dir/vod_capacity_planner.cpp.o.d"
  "vod_capacity_planner"
  "vod_capacity_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vod_capacity_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
