# Empty compiler generated dependencies file for vod_capacity_planner.
# This may be replaced when dependencies are built.
