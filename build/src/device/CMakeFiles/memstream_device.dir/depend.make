# Empty dependencies file for memstream_device.
# This may be replaced when dependencies are built.
