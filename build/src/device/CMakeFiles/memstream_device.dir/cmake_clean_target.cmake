file(REMOVE_RECURSE
  "libmemstream_device.a"
)
