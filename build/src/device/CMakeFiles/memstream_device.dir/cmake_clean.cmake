file(REMOVE_RECURSE
  "CMakeFiles/memstream_device.dir/bank.cc.o"
  "CMakeFiles/memstream_device.dir/bank.cc.o.d"
  "CMakeFiles/memstream_device.dir/device.cc.o"
  "CMakeFiles/memstream_device.dir/device.cc.o.d"
  "CMakeFiles/memstream_device.dir/device_cache.cc.o"
  "CMakeFiles/memstream_device.dir/device_cache.cc.o.d"
  "CMakeFiles/memstream_device.dir/device_catalog.cc.o"
  "CMakeFiles/memstream_device.dir/device_catalog.cc.o.d"
  "CMakeFiles/memstream_device.dir/disk.cc.o"
  "CMakeFiles/memstream_device.dir/disk.cc.o.d"
  "CMakeFiles/memstream_device.dir/disk_geometry.cc.o"
  "CMakeFiles/memstream_device.dir/disk_geometry.cc.o.d"
  "CMakeFiles/memstream_device.dir/disk_scheduler.cc.o"
  "CMakeFiles/memstream_device.dir/disk_scheduler.cc.o.d"
  "CMakeFiles/memstream_device.dir/dram.cc.o"
  "CMakeFiles/memstream_device.dir/dram.cc.o.d"
  "CMakeFiles/memstream_device.dir/mems_device.cc.o"
  "CMakeFiles/memstream_device.dir/mems_device.cc.o.d"
  "CMakeFiles/memstream_device.dir/mems_scheduler.cc.o"
  "CMakeFiles/memstream_device.dir/mems_scheduler.cc.o.d"
  "CMakeFiles/memstream_device.dir/seek_model.cc.o"
  "CMakeFiles/memstream_device.dir/seek_model.cc.o.d"
  "libmemstream_device.a"
  "libmemstream_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memstream_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
