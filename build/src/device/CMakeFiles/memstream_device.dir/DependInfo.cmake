
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/bank.cc" "src/device/CMakeFiles/memstream_device.dir/bank.cc.o" "gcc" "src/device/CMakeFiles/memstream_device.dir/bank.cc.o.d"
  "/root/repo/src/device/device.cc" "src/device/CMakeFiles/memstream_device.dir/device.cc.o" "gcc" "src/device/CMakeFiles/memstream_device.dir/device.cc.o.d"
  "/root/repo/src/device/device_cache.cc" "src/device/CMakeFiles/memstream_device.dir/device_cache.cc.o" "gcc" "src/device/CMakeFiles/memstream_device.dir/device_cache.cc.o.d"
  "/root/repo/src/device/device_catalog.cc" "src/device/CMakeFiles/memstream_device.dir/device_catalog.cc.o" "gcc" "src/device/CMakeFiles/memstream_device.dir/device_catalog.cc.o.d"
  "/root/repo/src/device/disk.cc" "src/device/CMakeFiles/memstream_device.dir/disk.cc.o" "gcc" "src/device/CMakeFiles/memstream_device.dir/disk.cc.o.d"
  "/root/repo/src/device/disk_geometry.cc" "src/device/CMakeFiles/memstream_device.dir/disk_geometry.cc.o" "gcc" "src/device/CMakeFiles/memstream_device.dir/disk_geometry.cc.o.d"
  "/root/repo/src/device/disk_scheduler.cc" "src/device/CMakeFiles/memstream_device.dir/disk_scheduler.cc.o" "gcc" "src/device/CMakeFiles/memstream_device.dir/disk_scheduler.cc.o.d"
  "/root/repo/src/device/dram.cc" "src/device/CMakeFiles/memstream_device.dir/dram.cc.o" "gcc" "src/device/CMakeFiles/memstream_device.dir/dram.cc.o.d"
  "/root/repo/src/device/mems_device.cc" "src/device/CMakeFiles/memstream_device.dir/mems_device.cc.o" "gcc" "src/device/CMakeFiles/memstream_device.dir/mems_device.cc.o.d"
  "/root/repo/src/device/mems_scheduler.cc" "src/device/CMakeFiles/memstream_device.dir/mems_scheduler.cc.o" "gcc" "src/device/CMakeFiles/memstream_device.dir/mems_scheduler.cc.o.d"
  "/root/repo/src/device/seek_model.cc" "src/device/CMakeFiles/memstream_device.dir/seek_model.cc.o" "gcc" "src/device/CMakeFiles/memstream_device.dir/seek_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/memstream_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
