file(REMOVE_RECURSE
  "libmemstream_server.a"
)
