
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/admission.cc" "src/server/CMakeFiles/memstream_server.dir/admission.cc.o" "gcc" "src/server/CMakeFiles/memstream_server.dir/admission.cc.o.d"
  "/root/repo/src/server/buffer_pool.cc" "src/server/CMakeFiles/memstream_server.dir/buffer_pool.cc.o" "gcc" "src/server/CMakeFiles/memstream_server.dir/buffer_pool.cc.o.d"
  "/root/repo/src/server/cache_server.cc" "src/server/CMakeFiles/memstream_server.dir/cache_server.cc.o" "gcc" "src/server/CMakeFiles/memstream_server.dir/cache_server.cc.o.d"
  "/root/repo/src/server/edf_server.cc" "src/server/CMakeFiles/memstream_server.dir/edf_server.cc.o" "gcc" "src/server/CMakeFiles/memstream_server.dir/edf_server.cc.o.d"
  "/root/repo/src/server/farm.cc" "src/server/CMakeFiles/memstream_server.dir/farm.cc.o" "gcc" "src/server/CMakeFiles/memstream_server.dir/farm.cc.o.d"
  "/root/repo/src/server/media_server.cc" "src/server/CMakeFiles/memstream_server.dir/media_server.cc.o" "gcc" "src/server/CMakeFiles/memstream_server.dir/media_server.cc.o.d"
  "/root/repo/src/server/mems_pipeline_server.cc" "src/server/CMakeFiles/memstream_server.dir/mems_pipeline_server.cc.o" "gcc" "src/server/CMakeFiles/memstream_server.dir/mems_pipeline_server.cc.o.d"
  "/root/repo/src/server/stream_session.cc" "src/server/CMakeFiles/memstream_server.dir/stream_session.cc.o" "gcc" "src/server/CMakeFiles/memstream_server.dir/stream_session.cc.o.d"
  "/root/repo/src/server/timecycle_server.cc" "src/server/CMakeFiles/memstream_server.dir/timecycle_server.cc.o" "gcc" "src/server/CMakeFiles/memstream_server.dir/timecycle_server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/memstream_common.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/memstream_device.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/memstream_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/memstream_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
