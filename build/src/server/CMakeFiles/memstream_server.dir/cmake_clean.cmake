file(REMOVE_RECURSE
  "CMakeFiles/memstream_server.dir/admission.cc.o"
  "CMakeFiles/memstream_server.dir/admission.cc.o.d"
  "CMakeFiles/memstream_server.dir/buffer_pool.cc.o"
  "CMakeFiles/memstream_server.dir/buffer_pool.cc.o.d"
  "CMakeFiles/memstream_server.dir/cache_server.cc.o"
  "CMakeFiles/memstream_server.dir/cache_server.cc.o.d"
  "CMakeFiles/memstream_server.dir/edf_server.cc.o"
  "CMakeFiles/memstream_server.dir/edf_server.cc.o.d"
  "CMakeFiles/memstream_server.dir/farm.cc.o"
  "CMakeFiles/memstream_server.dir/farm.cc.o.d"
  "CMakeFiles/memstream_server.dir/media_server.cc.o"
  "CMakeFiles/memstream_server.dir/media_server.cc.o.d"
  "CMakeFiles/memstream_server.dir/mems_pipeline_server.cc.o"
  "CMakeFiles/memstream_server.dir/mems_pipeline_server.cc.o.d"
  "CMakeFiles/memstream_server.dir/stream_session.cc.o"
  "CMakeFiles/memstream_server.dir/stream_session.cc.o.d"
  "CMakeFiles/memstream_server.dir/timecycle_server.cc.o"
  "CMakeFiles/memstream_server.dir/timecycle_server.cc.o.d"
  "libmemstream_server.a"
  "libmemstream_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memstream_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
