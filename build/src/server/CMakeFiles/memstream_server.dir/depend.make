# Empty dependencies file for memstream_server.
# This may be replaced when dependencies are built.
