
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/arrival_sim.cc" "src/workload/CMakeFiles/memstream_workload.dir/arrival_sim.cc.o" "gcc" "src/workload/CMakeFiles/memstream_workload.dir/arrival_sim.cc.o.d"
  "/root/repo/src/workload/cache_update.cc" "src/workload/CMakeFiles/memstream_workload.dir/cache_update.cc.o" "gcc" "src/workload/CMakeFiles/memstream_workload.dir/cache_update.cc.o.d"
  "/root/repo/src/workload/catalog.cc" "src/workload/CMakeFiles/memstream_workload.dir/catalog.cc.o" "gcc" "src/workload/CMakeFiles/memstream_workload.dir/catalog.cc.o.d"
  "/root/repo/src/workload/popularity.cc" "src/workload/CMakeFiles/memstream_workload.dir/popularity.cc.o" "gcc" "src/workload/CMakeFiles/memstream_workload.dir/popularity.cc.o.d"
  "/root/repo/src/workload/request_gen.cc" "src/workload/CMakeFiles/memstream_workload.dir/request_gen.cc.o" "gcc" "src/workload/CMakeFiles/memstream_workload.dir/request_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/memstream_common.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/memstream_model.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/memstream_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
