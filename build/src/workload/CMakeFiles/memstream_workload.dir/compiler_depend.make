# Empty compiler generated dependencies file for memstream_workload.
# This may be replaced when dependencies are built.
