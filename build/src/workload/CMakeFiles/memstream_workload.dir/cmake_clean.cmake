file(REMOVE_RECURSE
  "CMakeFiles/memstream_workload.dir/arrival_sim.cc.o"
  "CMakeFiles/memstream_workload.dir/arrival_sim.cc.o.d"
  "CMakeFiles/memstream_workload.dir/cache_update.cc.o"
  "CMakeFiles/memstream_workload.dir/cache_update.cc.o.d"
  "CMakeFiles/memstream_workload.dir/catalog.cc.o"
  "CMakeFiles/memstream_workload.dir/catalog.cc.o.d"
  "CMakeFiles/memstream_workload.dir/popularity.cc.o"
  "CMakeFiles/memstream_workload.dir/popularity.cc.o.d"
  "CMakeFiles/memstream_workload.dir/request_gen.cc.o"
  "CMakeFiles/memstream_workload.dir/request_gen.cc.o.d"
  "libmemstream_workload.a"
  "libmemstream_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memstream_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
