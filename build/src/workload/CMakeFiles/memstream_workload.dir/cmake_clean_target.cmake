file(REMOVE_RECURSE
  "libmemstream_workload.a"
)
