# Empty dependencies file for memstream_model.
# This may be replaced when dependencies are built.
