file(REMOVE_RECURSE
  "CMakeFiles/memstream_model.dir/cost.cc.o"
  "CMakeFiles/memstream_model.dir/cost.cc.o.d"
  "CMakeFiles/memstream_model.dir/hybrid.cc.o"
  "CMakeFiles/memstream_model.dir/hybrid.cc.o.d"
  "CMakeFiles/memstream_model.dir/mems_buffer.cc.o"
  "CMakeFiles/memstream_model.dir/mems_buffer.cc.o.d"
  "CMakeFiles/memstream_model.dir/mems_cache.cc.o"
  "CMakeFiles/memstream_model.dir/mems_cache.cc.o.d"
  "CMakeFiles/memstream_model.dir/planner.cc.o"
  "CMakeFiles/memstream_model.dir/planner.cc.o.d"
  "CMakeFiles/memstream_model.dir/profiles.cc.o"
  "CMakeFiles/memstream_model.dir/profiles.cc.o.d"
  "CMakeFiles/memstream_model.dir/scale_out.cc.o"
  "CMakeFiles/memstream_model.dir/scale_out.cc.o.d"
  "CMakeFiles/memstream_model.dir/sensitivity.cc.o"
  "CMakeFiles/memstream_model.dir/sensitivity.cc.o.d"
  "CMakeFiles/memstream_model.dir/stream.cc.o"
  "CMakeFiles/memstream_model.dir/stream.cc.o.d"
  "CMakeFiles/memstream_model.dir/timecycle.cc.o"
  "CMakeFiles/memstream_model.dir/timecycle.cc.o.d"
  "libmemstream_model.a"
  "libmemstream_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memstream_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
