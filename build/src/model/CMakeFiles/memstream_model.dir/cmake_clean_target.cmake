file(REMOVE_RECURSE
  "libmemstream_model.a"
)
