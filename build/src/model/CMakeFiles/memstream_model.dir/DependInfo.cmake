
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/cost.cc" "src/model/CMakeFiles/memstream_model.dir/cost.cc.o" "gcc" "src/model/CMakeFiles/memstream_model.dir/cost.cc.o.d"
  "/root/repo/src/model/hybrid.cc" "src/model/CMakeFiles/memstream_model.dir/hybrid.cc.o" "gcc" "src/model/CMakeFiles/memstream_model.dir/hybrid.cc.o.d"
  "/root/repo/src/model/mems_buffer.cc" "src/model/CMakeFiles/memstream_model.dir/mems_buffer.cc.o" "gcc" "src/model/CMakeFiles/memstream_model.dir/mems_buffer.cc.o.d"
  "/root/repo/src/model/mems_cache.cc" "src/model/CMakeFiles/memstream_model.dir/mems_cache.cc.o" "gcc" "src/model/CMakeFiles/memstream_model.dir/mems_cache.cc.o.d"
  "/root/repo/src/model/planner.cc" "src/model/CMakeFiles/memstream_model.dir/planner.cc.o" "gcc" "src/model/CMakeFiles/memstream_model.dir/planner.cc.o.d"
  "/root/repo/src/model/profiles.cc" "src/model/CMakeFiles/memstream_model.dir/profiles.cc.o" "gcc" "src/model/CMakeFiles/memstream_model.dir/profiles.cc.o.d"
  "/root/repo/src/model/scale_out.cc" "src/model/CMakeFiles/memstream_model.dir/scale_out.cc.o" "gcc" "src/model/CMakeFiles/memstream_model.dir/scale_out.cc.o.d"
  "/root/repo/src/model/sensitivity.cc" "src/model/CMakeFiles/memstream_model.dir/sensitivity.cc.o" "gcc" "src/model/CMakeFiles/memstream_model.dir/sensitivity.cc.o.d"
  "/root/repo/src/model/stream.cc" "src/model/CMakeFiles/memstream_model.dir/stream.cc.o" "gcc" "src/model/CMakeFiles/memstream_model.dir/stream.cc.o.d"
  "/root/repo/src/model/timecycle.cc" "src/model/CMakeFiles/memstream_model.dir/timecycle.cc.o" "gcc" "src/model/CMakeFiles/memstream_model.dir/timecycle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/memstream_common.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/memstream_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
