file(REMOVE_RECURSE
  "libmemstream_common.a"
)
