# Empty compiler generated dependencies file for memstream_common.
# This may be replaced when dependencies are built.
