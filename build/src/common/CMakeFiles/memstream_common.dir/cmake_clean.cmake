file(REMOVE_RECURSE
  "CMakeFiles/memstream_common.dir/csv_writer.cc.o"
  "CMakeFiles/memstream_common.dir/csv_writer.cc.o.d"
  "CMakeFiles/memstream_common.dir/histogram.cc.o"
  "CMakeFiles/memstream_common.dir/histogram.cc.o.d"
  "CMakeFiles/memstream_common.dir/logging.cc.o"
  "CMakeFiles/memstream_common.dir/logging.cc.o.d"
  "CMakeFiles/memstream_common.dir/math_utils.cc.o"
  "CMakeFiles/memstream_common.dir/math_utils.cc.o.d"
  "CMakeFiles/memstream_common.dir/random.cc.o"
  "CMakeFiles/memstream_common.dir/random.cc.o.d"
  "CMakeFiles/memstream_common.dir/status.cc.o"
  "CMakeFiles/memstream_common.dir/status.cc.o.d"
  "CMakeFiles/memstream_common.dir/table_printer.cc.o"
  "CMakeFiles/memstream_common.dir/table_printer.cc.o.d"
  "libmemstream_common.a"
  "libmemstream_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memstream_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
