file(REMOVE_RECURSE
  "libmemstream_sim.a"
)
