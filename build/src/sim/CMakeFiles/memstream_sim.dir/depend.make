# Empty dependencies file for memstream_sim.
# This may be replaced when dependencies are built.
