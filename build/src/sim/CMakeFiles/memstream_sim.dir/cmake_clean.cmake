file(REMOVE_RECURSE
  "CMakeFiles/memstream_sim.dir/event_queue.cc.o"
  "CMakeFiles/memstream_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/memstream_sim.dir/simulator.cc.o"
  "CMakeFiles/memstream_sim.dir/simulator.cc.o.d"
  "CMakeFiles/memstream_sim.dir/trace.cc.o"
  "CMakeFiles/memstream_sim.dir/trace.cc.o.d"
  "libmemstream_sim.a"
  "libmemstream_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memstream_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
