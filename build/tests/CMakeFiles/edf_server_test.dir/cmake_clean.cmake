file(REMOVE_RECURSE
  "CMakeFiles/edf_server_test.dir/edf_server_test.cc.o"
  "CMakeFiles/edf_server_test.dir/edf_server_test.cc.o.d"
  "edf_server_test"
  "edf_server_test.pdb"
  "edf_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edf_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
