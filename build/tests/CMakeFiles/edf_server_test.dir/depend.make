# Empty dependencies file for edf_server_test.
# This may be replaced when dependencies are built.
