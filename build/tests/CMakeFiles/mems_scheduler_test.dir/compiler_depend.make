# Empty compiler generated dependencies file for mems_scheduler_test.
# This may be replaced when dependencies are built.
