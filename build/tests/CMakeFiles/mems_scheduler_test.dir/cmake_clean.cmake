file(REMOVE_RECURSE
  "CMakeFiles/mems_scheduler_test.dir/mems_scheduler_test.cc.o"
  "CMakeFiles/mems_scheduler_test.dir/mems_scheduler_test.cc.o.d"
  "mems_scheduler_test"
  "mems_scheduler_test.pdb"
  "mems_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mems_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
