# Empty dependencies file for timecycle_test.
# This may be replaced when dependencies are built.
