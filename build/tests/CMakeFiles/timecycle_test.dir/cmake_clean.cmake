file(REMOVE_RECURSE
  "CMakeFiles/timecycle_test.dir/timecycle_test.cc.o"
  "CMakeFiles/timecycle_test.dir/timecycle_test.cc.o.d"
  "timecycle_test"
  "timecycle_test.pdb"
  "timecycle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timecycle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
