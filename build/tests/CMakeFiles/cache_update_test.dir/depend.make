# Empty dependencies file for cache_update_test.
# This may be replaced when dependencies are built.
