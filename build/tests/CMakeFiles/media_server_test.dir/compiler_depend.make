# Empty compiler generated dependencies file for media_server_test.
# This may be replaced when dependencies are built.
