file(REMOVE_RECURSE
  "CMakeFiles/media_server_test.dir/media_server_test.cc.o"
  "CMakeFiles/media_server_test.dir/media_server_test.cc.o.d"
  "media_server_test"
  "media_server_test.pdb"
  "media_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/media_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
