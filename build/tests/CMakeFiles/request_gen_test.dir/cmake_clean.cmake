file(REMOVE_RECURSE
  "CMakeFiles/request_gen_test.dir/request_gen_test.cc.o"
  "CMakeFiles/request_gen_test.dir/request_gen_test.cc.o.d"
  "request_gen_test"
  "request_gen_test.pdb"
  "request_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/request_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
