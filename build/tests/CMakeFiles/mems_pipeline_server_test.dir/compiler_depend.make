# Empty compiler generated dependencies file for mems_pipeline_server_test.
# This may be replaced when dependencies are built.
