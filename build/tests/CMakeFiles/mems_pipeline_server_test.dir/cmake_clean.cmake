file(REMOVE_RECURSE
  "CMakeFiles/mems_pipeline_server_test.dir/mems_pipeline_server_test.cc.o"
  "CMakeFiles/mems_pipeline_server_test.dir/mems_pipeline_server_test.cc.o.d"
  "mems_pipeline_server_test"
  "mems_pipeline_server_test.pdb"
  "mems_pipeline_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mems_pipeline_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
