file(REMOVE_RECURSE
  "CMakeFiles/disk_geometry_test.dir/disk_geometry_test.cc.o"
  "CMakeFiles/disk_geometry_test.dir/disk_geometry_test.cc.o.d"
  "disk_geometry_test"
  "disk_geometry_test.pdb"
  "disk_geometry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_geometry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
