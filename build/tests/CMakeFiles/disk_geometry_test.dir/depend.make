# Empty dependencies file for disk_geometry_test.
# This may be replaced when dependencies are built.
