# Empty compiler generated dependencies file for mems_cache_test.
# This may be replaced when dependencies are built.
