file(REMOVE_RECURSE
  "CMakeFiles/mems_cache_test.dir/mems_cache_test.cc.o"
  "CMakeFiles/mems_cache_test.dir/mems_cache_test.cc.o.d"
  "mems_cache_test"
  "mems_cache_test.pdb"
  "mems_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mems_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
