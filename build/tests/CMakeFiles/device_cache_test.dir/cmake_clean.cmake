file(REMOVE_RECURSE
  "CMakeFiles/device_cache_test.dir/device_cache_test.cc.o"
  "CMakeFiles/device_cache_test.dir/device_cache_test.cc.o.d"
  "device_cache_test"
  "device_cache_test.pdb"
  "device_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
