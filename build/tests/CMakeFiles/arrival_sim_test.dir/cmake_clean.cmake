file(REMOVE_RECURSE
  "CMakeFiles/arrival_sim_test.dir/arrival_sim_test.cc.o"
  "CMakeFiles/arrival_sim_test.dir/arrival_sim_test.cc.o.d"
  "arrival_sim_test"
  "arrival_sim_test.pdb"
  "arrival_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arrival_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
