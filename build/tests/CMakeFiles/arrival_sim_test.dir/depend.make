# Empty dependencies file for arrival_sim_test.
# This may be replaced when dependencies are built.
