file(REMOVE_RECURSE
  "CMakeFiles/cache_server_test.dir/cache_server_test.cc.o"
  "CMakeFiles/cache_server_test.dir/cache_server_test.cc.o.d"
  "cache_server_test"
  "cache_server_test.pdb"
  "cache_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
