file(REMOVE_RECURSE
  "CMakeFiles/stream_session_test.dir/stream_session_test.cc.o"
  "CMakeFiles/stream_session_test.dir/stream_session_test.cc.o.d"
  "stream_session_test"
  "stream_session_test.pdb"
  "stream_session_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
