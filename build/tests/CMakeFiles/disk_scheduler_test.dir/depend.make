# Empty dependencies file for disk_scheduler_test.
# This may be replaced when dependencies are built.
