file(REMOVE_RECURSE
  "CMakeFiles/disk_scheduler_test.dir/disk_scheduler_test.cc.o"
  "CMakeFiles/disk_scheduler_test.dir/disk_scheduler_test.cc.o.d"
  "disk_scheduler_test"
  "disk_scheduler_test.pdb"
  "disk_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
