# Empty dependencies file for mems_buffer_test.
# This may be replaced when dependencies are built.
