file(REMOVE_RECURSE
  "CMakeFiles/mems_buffer_test.dir/mems_buffer_test.cc.o"
  "CMakeFiles/mems_buffer_test.dir/mems_buffer_test.cc.o.d"
  "mems_buffer_test"
  "mems_buffer_test.pdb"
  "mems_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mems_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
