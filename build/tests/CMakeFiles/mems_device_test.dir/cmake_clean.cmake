file(REMOVE_RECURSE
  "CMakeFiles/mems_device_test.dir/mems_device_test.cc.o"
  "CMakeFiles/mems_device_test.dir/mems_device_test.cc.o.d"
  "mems_device_test"
  "mems_device_test.pdb"
  "mems_device_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mems_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
