# Empty dependencies file for mems_device_test.
# This may be replaced when dependencies are built.
