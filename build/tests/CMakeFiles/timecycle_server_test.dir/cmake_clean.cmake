file(REMOVE_RECURSE
  "CMakeFiles/timecycle_server_test.dir/timecycle_server_test.cc.o"
  "CMakeFiles/timecycle_server_test.dir/timecycle_server_test.cc.o.d"
  "timecycle_server_test"
  "timecycle_server_test.pdb"
  "timecycle_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timecycle_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
