# Empty dependencies file for timecycle_server_test.
# This may be replaced when dependencies are built.
