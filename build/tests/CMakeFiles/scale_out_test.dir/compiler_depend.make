# Empty compiler generated dependencies file for scale_out_test.
# This may be replaced when dependencies are built.
