file(REMOVE_RECURSE
  "CMakeFiles/scale_out_test.dir/scale_out_test.cc.o"
  "CMakeFiles/scale_out_test.dir/scale_out_test.cc.o.d"
  "scale_out_test"
  "scale_out_test.pdb"
  "scale_out_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scale_out_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
