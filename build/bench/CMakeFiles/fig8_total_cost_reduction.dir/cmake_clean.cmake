file(REMOVE_RECURSE
  "CMakeFiles/fig8_total_cost_reduction.dir/fig8_total_cost_reduction.cc.o"
  "CMakeFiles/fig8_total_cost_reduction.dir/fig8_total_cost_reduction.cc.o.d"
  "fig8_total_cost_reduction"
  "fig8_total_cost_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_total_cost_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
