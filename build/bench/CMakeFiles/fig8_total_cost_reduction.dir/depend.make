# Empty dependencies file for fig8_total_cost_reduction.
# This may be replaced when dependencies are built.
