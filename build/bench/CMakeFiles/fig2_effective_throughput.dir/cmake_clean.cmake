file(REMOVE_RECURSE
  "CMakeFiles/fig2_effective_throughput.dir/fig2_effective_throughput.cc.o"
  "CMakeFiles/fig2_effective_throughput.dir/fig2_effective_throughput.cc.o.d"
  "fig2_effective_throughput"
  "fig2_effective_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_effective_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
