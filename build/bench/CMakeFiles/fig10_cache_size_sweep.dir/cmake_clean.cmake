file(REMOVE_RECURSE
  "CMakeFiles/fig10_cache_size_sweep.dir/fig10_cache_size_sweep.cc.o"
  "CMakeFiles/fig10_cache_size_sweep.dir/fig10_cache_size_sweep.cc.o.d"
  "fig10_cache_size_sweep"
  "fig10_cache_size_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cache_size_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
