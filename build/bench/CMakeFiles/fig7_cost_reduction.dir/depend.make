# Empty dependencies file for fig7_cost_reduction.
# This may be replaced when dependencies are built.
