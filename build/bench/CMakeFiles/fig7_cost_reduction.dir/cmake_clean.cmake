file(REMOVE_RECURSE
  "CMakeFiles/fig7_cost_reduction.dir/fig7_cost_reduction.cc.o"
  "CMakeFiles/fig7_cost_reduction.dir/fig7_cost_reduction.cc.o.d"
  "fig7_cost_reduction"
  "fig7_cost_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_cost_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
