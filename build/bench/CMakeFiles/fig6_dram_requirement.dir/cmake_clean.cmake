file(REMOVE_RECURSE
  "CMakeFiles/fig6_dram_requirement.dir/fig6_dram_requirement.cc.o"
  "CMakeFiles/fig6_dram_requirement.dir/fig6_dram_requirement.cc.o.d"
  "fig6_dram_requirement"
  "fig6_dram_requirement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_dram_requirement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
