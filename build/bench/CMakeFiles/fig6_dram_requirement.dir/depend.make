# Empty dependencies file for fig6_dram_requirement.
# This may be replaced when dependencies are built.
