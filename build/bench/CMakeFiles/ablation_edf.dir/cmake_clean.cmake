file(REMOVE_RECURSE
  "CMakeFiles/ablation_edf.dir/ablation_edf.cc.o"
  "CMakeFiles/ablation_edf.dir/ablation_edf.cc.o.d"
  "ablation_edf"
  "ablation_edf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_edf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
