file(REMOVE_RECURSE
  "CMakeFiles/table3_devices_2007.dir/table3_devices_2007.cc.o"
  "CMakeFiles/table3_devices_2007.dir/table3_devices_2007.cc.o.d"
  "table3_devices_2007"
  "table3_devices_2007.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_devices_2007.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
