# Empty compiler generated dependencies file for table3_devices_2007.
# This may be replaced when dependencies are built.
