# Empty compiler generated dependencies file for fig4_fig5_schedules.
# This may be replaced when dependencies are built.
