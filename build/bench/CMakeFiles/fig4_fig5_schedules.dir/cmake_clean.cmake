file(REMOVE_RECURSE
  "CMakeFiles/fig4_fig5_schedules.dir/fig4_fig5_schedules.cc.o"
  "CMakeFiles/fig4_fig5_schedules.dir/fig4_fig5_schedules.cc.o.d"
  "fig4_fig5_schedules"
  "fig4_fig5_schedules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_fig5_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
