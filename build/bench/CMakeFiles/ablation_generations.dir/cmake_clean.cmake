file(REMOVE_RECURSE
  "CMakeFiles/ablation_generations.dir/ablation_generations.cc.o"
  "CMakeFiles/ablation_generations.dir/ablation_generations.cc.o.d"
  "ablation_generations"
  "ablation_generations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_generations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
