# Empty compiler generated dependencies file for ablation_generations.
# This may be replaced when dependencies are built.
