# Empty compiler generated dependencies file for fig9_cache_throughput.
# This may be replaced when dependencies are built.
