# Empty compiler generated dependencies file for table1_media_characteristics.
# This may be replaced when dependencies are built.
