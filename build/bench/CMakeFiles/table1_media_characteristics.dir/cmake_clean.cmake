file(REMOVE_RECURSE
  "CMakeFiles/table1_media_characteristics.dir/table1_media_characteristics.cc.o"
  "CMakeFiles/table1_media_characteristics.dir/table1_media_characteristics.cc.o.d"
  "table1_media_characteristics"
  "table1_media_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_media_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
