// Regenerates Fig. 2: effective device throughput as a function of the
// average IO size, for the 2007 FutureDisk (average access latency) and
// the G3 MEMS device (maximum access latency) — the paper's motivation
// for why MEMS needs an order of magnitude smaller IOs than the disk to
// reach the same utilization.

#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/table_printer.h"
#include "device/device.h"

int main() {
  using namespace memstream;

  auto disk = bench::AnalyticFutureDisk();
  auto mems = device::MemsDevice::Create(device::MemsG3()).value();
  const Seconds disk_latency = disk.AverageAccessLatency();   // 4.3 ms
  const Seconds mems_latency = mems.MaxAccessLatency();       // 0.86 ms

  std::cout << "Fig. 2: Effective device throughputs vs average IO size\n"
            << "  disk: avg latency " << ToMs(disk_latency)
            << " ms, rate 300 MB/s;  MEMS: max latency "
            << ToMs(mems_latency) << " ms, rate 320 MB/s\n\n";

  TablePrinter table({"IO size [kB]", "MEMS [MB/s]", "Disk [MB/s]",
                      "MEMS/disk"});
  CsvWriter csv(bench::CsvPath("fig2_effective_throughput"),
                {"io_kb", "mems_mbps", "disk_mbps"});

  std::vector<double> sizes_kb;
  for (double s = 16; s <= 10240; s *= 2) sizes_kb.push_back(s);
  for (double s : {100.0, 1000.0, 2000.0, 4000.0, 6000.0, 8000.0, 10000.0}) {
    sizes_kb.push_back(s);
  }
  std::sort(sizes_kb.begin(), sizes_kb.end());
  sizes_kb.erase(std::unique(sizes_kb.begin(), sizes_kb.end()),
                 sizes_kb.end());

  for (double kb : sizes_kb) {
    const Bytes io = kb * kKB;
    const double mems_tput =
        device::EffectiveThroughput(io, mems_latency, 320 * kMBps) / kMBps;
    const double disk_tput =
        device::EffectiveThroughput(io, disk_latency, 300 * kMBps) / kMBps;
    table.AddRow({TablePrinter::Cell(kb, 0), TablePrinter::Cell(mems_tput, 1),
                  TablePrinter::Cell(disk_tput, 1),
                  TablePrinter::Cell(mems_tput / disk_tput, 2)});
    csv.AddRow(std::vector<double>{kb, mems_tput, disk_tput});
  }
  table.Print(std::cout);

  // Headline comparison: IO size needed to reach 90% of peak throughput.
  auto io90_mems =
      device::IoSizeForThroughput(0.9 * 320 * kMBps, mems_latency,
                                  320 * kMBps);
  auto io90_disk =
      device::IoSizeForThroughput(0.9 * 300 * kMBps, disk_latency,
                                  300 * kMBps);
  std::cout << "\nIO size for 90% utilization: MEMS "
            << ToMB(io90_mems.value()) << " MB vs disk "
            << ToMB(io90_disk.value()) << " MB ("
            << io90_disk.value() / io90_mems.value() << "x)\n";
  std::cout << "CSV: " << bench::CsvPath("fig2_effective_throughput")
            << "\n";
  return 0;
}
