// Regenerates Fig. 8: reduction in the *total* buffering cost (DRAM plus
// the MEMS storage actually used, per-byte pricing) vs the number of
// streams, for the four media types. The disk IO cycle T_disk is chosen
// by the planner's closed-form per-byte optimum.

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/table_printer.h"
#include "model/planner.h"
#include "model/stream.h"
#include "model/timecycle.h"

int main() {
  using namespace memstream;

  const auto latency = bench::PaperConservativeDiskLatency();
  model::CostInputs prices;
  prices.dram_per_byte = 20.0 / kGB;
  prices.mems_per_byte = 1.0 / kGB;
  prices.mems_capacity = 10 * kGB;

  std::cout << "Fig. 8: Reduction in total buffering cost [$] vs N\n"
            << "  (per-byte MEMS pricing, k = 2 G3 devices, optimal "
               "T_disk)\n\n";

  TablePrinter table({"Media", "N", "Cost w/o MEMS [$]",
                      "Cost with MEMS [$]", "Reduction [$]"});
  CsvWriter csv(bench::CsvPath("fig8_total_cost_reduction"),
                {"media", "bit_rate_bps", "n", "cost_without",
                 "cost_with", "reduction"});

  for (const auto& media : model::PaperStreamClasses()) {
    const std::int64_t cap =
        model::MaxStreamsBandwidthBound(300 * kMBps, media.bit_rate);
    // Log-spaced sweep plus near-saturation points (the figure's right
    // edge, where the savings peak).
    std::vector<std::int64_t> stream_counts;
    for (std::int64_t n = 2; n < cap / 2;
         n = std::max<std::int64_t>(n + 1, static_cast<std::int64_t>(
                                               std::llround(n * 2.15)))) {
      stream_counts.push_back(n);
    }
    for (double frac : {0.5, 0.7, 0.85, 0.95}) {
      stream_counts.push_back(
          static_cast<std::int64_t>(frac * static_cast<double>(cap)));
    }
    std::sort(stream_counts.begin(), stream_counts.end());
    stream_counts.erase(
        std::unique(stream_counts.begin(), stream_counts.end()),
        stream_counts.end());
    for (std::int64_t n : stream_counts) {
      if (n > cap || n < 2) continue;
      model::DeviceProfile disk_profile;
      disk_profile.rate = 300 * kMBps;
      disk_profile.latency = latency(n);
      auto without = model::TotalBufferSize(n, media.bit_rate, disk_profile);
      if (!without.ok()) continue;
      const Dollars cost_without =
          without.value() * prices.dram_per_byte;

      model::MemsBufferParams params;
      params.k = 2;
      params.disk = disk_profile;
      params.mems = bench::MemsProfileAtRatio(5.0);
      params.mems_capacity_override = 1e18;  // per-byte pricing: no cap
      auto best = model::OptimalTdiskPerByte(n, media.bit_rate, params,
                                             prices);
      if (!best.ok()) continue;

      const Dollars reduction = cost_without - best.value().total_cost;
      table.AddRow({media.name, TablePrinter::Cell(n),
                    TablePrinter::Cell(cost_without, 3),
                    TablePrinter::Cell(best.value().total_cost, 3),
                    TablePrinter::Cell(reduction, 3)});
      csv.AddRow(std::vector<std::string>{
          media.name, std::to_string(media.bit_rate), std::to_string(n),
          std::to_string(cost_without),
          std::to_string(best.value().total_cost),
          std::to_string(reduction)});
    }
  }
  table.Print(std::cout);

  std::cout << "\nShape check (paper §5.1.2): savings are positive for "
               "every media type and grow toward lower bit-rates — tens "
               "of dollars for HDTV up to tens of thousands for mp3 at "
               "full load.\n";
  std::cout << "CSV: " << bench::CsvPath("fig8_total_cost_reduction")
            << "\n";
  return 0;
}
