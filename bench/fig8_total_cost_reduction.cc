// Regenerates Fig. 8: reduction in the *total* buffering cost (DRAM plus
// the MEMS storage actually used, per-byte pricing) vs the number of
// streams, for the four media types. The disk IO cycle T_disk is chosen
// by the planner's closed-form per-byte optimum.
//
// The (media, N) grid is evaluated on the parallel sweep engine; rows
// are emitted serially in grid order.

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/table_printer.h"
#include "model/planner.h"
#include "model/stream.h"
#include "model/timecycle.h"

int main() {
  using namespace memstream;

  const auto latency = bench::PaperConservativeDiskLatency();
  model::CostInputs prices;
  prices.dram_per_byte = 20.0 / kGB;
  prices.mems_per_byte = 1.0 / kGB;
  prices.mems_capacity = 10 * kGB;

  std::cout << "Fig. 8: Reduction in total buffering cost [$] vs N\n"
            << "  (per-byte MEMS pricing, k = 2 G3 devices, optimal "
               "T_disk)\n\n";

  TablePrinter table({"Media", "N", "Cost w/o MEMS [$]",
                      "Cost with MEMS [$]", "Reduction [$]"});
  CsvWriter csv(bench::CsvPath("fig8_total_cost_reduction"),
                {"media", "bit_rate_bps", "n", "cost_without",
                 "cost_with", "reduction"});

  struct Point {
    model::StreamClass media;
    std::int64_t n = 0;
  };
  std::vector<Point> points;
  for (const auto& media : model::PaperStreamClasses()) {
    const std::int64_t cap =
        model::MaxStreamsBandwidthBound(300 * kMBps, media.bit_rate);
    // Log-spaced sweep plus near-saturation points (the figure's right
    // edge, where the savings peak).
    std::vector<std::int64_t> stream_counts;
    for (std::int64_t n = 2; n < cap / 2;
         n = std::max<std::int64_t>(n + 1, static_cast<std::int64_t>(
                                               std::llround(n * 2.15)))) {
      stream_counts.push_back(n);
    }
    for (double frac : {0.5, 0.7, 0.85, 0.95}) {
      stream_counts.push_back(
          static_cast<std::int64_t>(frac * static_cast<double>(cap)));
    }
    std::sort(stream_counts.begin(), stream_counts.end());
    stream_counts.erase(
        std::unique(stream_counts.begin(), stream_counts.end()),
        stream_counts.end());
    if (bench::SmokeMode() && stream_counts.size() > 3) {
      stream_counts.resize(3);
    }
    for (std::int64_t n : stream_counts) {
      if (n > cap || n < 2) continue;
      points.push_back({media, n});
    }
  }

  struct Row {
    bool valid = false;
    Dollars cost_without = 0;
    Dollars cost_with = 0;
  };
  exp::SweepRunner runner;
  const auto rows = runner.Map(
      static_cast<std::int64_t>(points.size()),
      [&points, &latency, &prices](exp::TaskContext& ctx) {
        const Point& p = points[static_cast<std::size_t>(ctx.index())];
        Row row;
        ctx.AddEvents(1);
        model::DeviceProfile disk_profile;
        disk_profile.rate = 300 * kMBps;
        disk_profile.latency = latency(p.n);
        auto without =
            model::TotalBufferSize(p.n, p.media.bit_rate, disk_profile);
        if (!without.ok()) return row;
        row.cost_without = without.value() * prices.dram_per_byte;

        model::MemsBufferParams params;
        params.k = 2;
        params.disk = disk_profile;
        params.mems = bench::MemsProfileAtRatio(5.0);
        params.mems_capacity_override = 1e18;  // per-byte pricing: no cap
        auto best = model::OptimalTdiskPerByte(p.n, p.media.bit_rate,
                                               params, prices);
        if (!best.ok()) return row;
        row.valid = true;
        row.cost_with = best.value().total_cost;
        return row;
      });

  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    const Row& row = rows[i];
    if (!row.valid) continue;
    const Dollars reduction = row.cost_without - row.cost_with;
    table.AddRow({p.media.name, TablePrinter::Cell(p.n),
                  TablePrinter::Cell(row.cost_without, 3),
                  TablePrinter::Cell(row.cost_with, 3),
                  TablePrinter::Cell(reduction, 3)});
    csv.AddRow(std::vector<std::string>{
        p.media.name, std::to_string(p.media.bit_rate),
        std::to_string(p.n), std::to_string(row.cost_without),
        std::to_string(row.cost_with), std::to_string(reduction)});
  }
  table.Print(std::cout);

  std::cout << "\nShape check (paper §5.1.2): savings are positive for "
               "every media type and grow toward lower bit-rates — tens "
               "of dollars for HDTV up to tens of thousands for mp3 at "
               "full load.\n";
  std::cout << "CSV: " << bench::CsvPath("fig8_total_cost_reduction")
            << "\n";
  bench::RecordSweep("fig8_total_cost_reduction", runner);
  return 0;
}
