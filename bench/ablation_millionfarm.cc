// Million-stream farm ablation: the scale-out end-game of the paper's
// admission math. A farm of striped-array nodes (each collapsed to one
// fat disk, the Corollary-2 idiom) admits a Zipf workload through the
// farm router under per-shard Theorem-1/2 budgets, then rides out
// seeded node failures. Two placements face the same offered load:
//
//  - consistent hashing (one copy per title): a failed node's streams
//    have nowhere to go until the repair;
//  - popularity-aware (Zipf head replicated across R shards, tail
//    hashed): head streams fail over to surviving replicas, so
//    availability degrades gracefully.
//
// Full mode sustains >= 1M concurrently admitted streams across 128
// shards with per-shard QoS audits on; smoke mode trims to a 4-shard,
// ~1k-stream farm with the same node-failure script. Both policies'
// merged farm reports land next to the CSV as
// bench_results/millionfarm_<policy>.report.json.

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/table_printer.h"
#include "device/device_catalog.h"
#include "farm/sharded_farm.h"
#include "fault/fault_plan.h"
#include "obs/run_report.h"
#include "obs/slo.h"
#include "obs/stream_journal.h"

int main() {
  using namespace memstream;

  const bool smoke = bench::SmokeMode();

  // One shard node: a 5-way striped FutureDisk array collapsed to a
  // single device (uniform-rate model). Smoke keeps a single disk.
  device::DiskParameters node = device::FutureDisk2007();
  node.inner_rate = node.outer_rate;
  if (!smoke) {
    node.name = "FutureNode5x";
    node.outer_rate *= 5;
    node.inner_rate = node.outer_rate;
    node.capacity *= 5;
  }

  farm::ShardedFarmConfig base;
  base.num_shards = smoke ? 4 : 128;
  base.num_titles = smoke ? 200 : 20000;
  base.zipf_exponent = 0.8;
  // Offered load sits ~15% under the farm's aggregate Theorem-1 capacity
  // so surviving shards keep failover headroom; the Zipf hot spots still
  // saturate individual shards under consistent hashing.
  base.offered_streams = smoke ? 1000 : 1080000;
  base.bit_rate = 100 * kKBps;
  base.node_disk = node;
  base.dram_budget_per_shard = smoke ? 256 * kMB : 48 * kGB;
  base.duration = smoke ? 6 : 90;
  // A 10% replicated head captures ~63% of the Zipf(0.8) access mass —
  // the slice that can fail over when a node dies.
  base.replication_budget = 0.10;
  base.virtual_nodes = 64;
  base.seed = 42;
  base.audit = true;

  // Node-failure script: four shards (one in smoke) fail mid-run and
  // come back at 75% of the horizon.
  {
    std::vector<fault::FaultEvent> events;
    const double t_fail = 0.4 * base.duration;
    const double t_repair = 0.75 * base.duration;
    const std::int64_t downed = smoke ? 1 : 4;
    for (std::int64_t d = 0; d < downed; ++d) {
      fault::FaultEvent fail;
      fail.time = t_fail;
      fail.kind = fault::FaultKind::kMemsDeviceFail;
      fail.device = d;
      events.push_back(fail);
      fault::FaultEvent repair;
      repair.time = t_repair;
      repair.kind = fault::FaultKind::kMemsDeviceRepair;
      repair.device = d;
      events.push_back(repair);
    }
    base.faults = fault::FaultPlan::FromScript(events);
  }

  std::cout << "Million-farm ablation: " << base.offered_streams
            << " offered DivX streams over " << base.num_shards
            << " shard nodes (" << node.outer_rate / kMBps
            << " MB/s each), node failure at t=" << 0.4 * base.duration
            << " s, repair at t=" << 0.75 * base.duration << " s\n\n";

  struct Run {
    farm::PlacementPolicy policy;
    std::int64_t replicas;
  };
  const std::vector<Run> runs = {
      {farm::PlacementPolicy::kConsistentHash, 1},
      {farm::PlacementPolicy::kPopularityAware, 4},
  };

  TablePrinter table({"Placement", "Admitted", "Availability", "Failovers",
                      "Shed", "Readmits", "Underflows", "QoS violations",
                      "Peak DRAM/shard", "Mean util"});
  CsvWriter csv(bench::CsvPath("ablation_millionfarm"),
                {"popularity_aware", "shards", "offered", "admitted",
                 "availability", "failovers", "shed", "readmits",
                 "violations", "peak_dram_gb"});

  double total_wall = 0;
  std::int64_t total_admitted = 0;
  std::int64_t total_tasks = 0;
  int sweep_threads = 1;

  for (const Run& run : runs) {
    farm::ShardedFarmConfig cfg = base;
    cfg.policy = run.policy;
    cfg.replicas = run.replicas;

    // Journal + SLO telemetry only at smoke scale: a million journal
    // slots would dominate the run's memory for no analytic gain.
    obs::StreamJournal journal;
    obs::SloMonitor slo;
    obs::MetricsRegistry metrics;
    if (smoke) {
      cfg.journal = &journal;
      cfg.slo = &slo;
    }
    cfg.metrics = &metrics;

    auto result = farm::RunShardedFarm(cfg);
    if (!result.ok()) {
      std::cerr << "farm run failed (" << farm::PlacementPolicyName(run.policy)
                << "): " << result.status().ToString() << "\n";
      return 1;
    }
    const farm::FarmRunReport& r = result.value();
    total_wall += r.sweep.wall_seconds;
    total_admitted += r.admitted;
    total_tasks += r.sweep.tasks;
    sweep_threads = r.sweep.threads;

    table.AddRow({r.policy, TablePrinter::Cell(r.admitted),
                  TablePrinter::Cell(r.availability, 4),
                  TablePrinter::Cell(r.failovers),
                  TablePrinter::Cell(r.shed_actions),
                  TablePrinter::Cell(r.readmits),
                  TablePrinter::Cell(r.underflow_events),
                  TablePrinter::Cell(r.qos_violations),
                  TablePrinter::Cell(r.peak_dram_per_shard / kGB, 2) + " GB",
                  TablePrinter::Cell(r.mean_utilization, 2)});
    csv.AddRow(std::vector<double>{
        run.policy == farm::PlacementPolicy::kPopularityAware ? 1.0 : 0.0,
        static_cast<double>(r.shards), static_cast<double>(r.offered),
        static_cast<double>(r.admitted), r.availability,
        static_cast<double>(r.failovers),
        static_cast<double>(r.shed_actions),
        static_cast<double>(r.readmits),
        static_cast<double>(r.qos_violations), r.peak_dram_per_shard / kGB});

    obs::RunReport report;
    report.title = std::string("millionfarm ") + r.policy;
    report.AddConfig("policy", r.policy);
    report.AddConfig("shards", std::to_string(r.shards));
    report.AddConfig("titles", std::to_string(r.titles));
    report.AddConfig("replicas", std::to_string(run.replicas));
    report.AddConfig("offered", std::to_string(r.offered));
    report.AddConfig("bit_rate", std::to_string(cfg.bit_rate));
    report.AddConfig("duration", std::to_string(cfg.duration));
    report.AddSimulated("admitted", static_cast<double>(r.admitted));
    report.AddSimulated("availability", r.availability);
    report.AddSimulated("qos_violations",
                        static_cast<double>(r.qos_violations));
    report.AddSimulated("underflow_events",
                        static_cast<double>(r.underflow_events));
    report.AddSimulated("peak_dram_per_shard", r.peak_dram_per_shard);
    const obs::FarmBlock block = farm::BuildFarmBlock(r);
    report.farm = &block;
    report.metrics = &metrics;
    if (smoke) {
      report.streams = &journal;
      report.slo = &slo;
    }
    const std::string path =
        bench::ResultsDir() + "/millionfarm_" + r.policy + ".report.json";
    if (auto st = report.WriteFile(path); !st.ok()) {
      std::cerr << "report write failed: " << st.ToString() << "\n";
      return 1;
    }
    std::cout << farm::PlacementPolicyName(run.policy) << ": report -> "
              << path << "\n";
  }
  std::cout << "\n";
  table.Print(std::cout);

  std::cout << "\nReading: both placements admit against the same "
               "per-shard Theorem-1/2 budgets, but only the replicated "
               "Zipf head can fail over when a node dies — consistent "
               "hashing sheds every resident of the failed shards until "
               "repair, popularity-aware re-admits the head on surviving "
               "replicas within the same DRAM envelope.\n";
  std::cout << "CSV: " << bench::CsvPath("ablation_millionfarm") << "\n";

  // Shard-merge throughput for the perf trajectory: admitted streams
  // per second of parallel farm execution (not IOs — admission routing
  // plus the per-shard merge is the scaling cost this bench guards).
  exp::BenchSweepRecord record;
  record.bench = "ablation_millionfarm";
  record.tasks = total_tasks;
  record.threads = sweep_threads;
  record.wall_seconds = total_wall;
  record.events = total_admitted;
  record.events_per_sec =
      total_wall > 0 ? static_cast<double>(total_admitted) / total_wall : 0;
  const std::string sweeps = bench::ResultsDir() + "/BENCH_sweeps.json";
  (void)exp::AppendBenchSweepRecord(sweeps, record);
  std::printf(
      "Sweep: %lld shard-epoch tasks on %d thread(s), %.3f s wall, "
      "%lld streams admitted (%.0f streams/s) -> %s\n",
      static_cast<long long>(record.tasks), record.threads,
      record.wall_seconds, static_cast<long long>(record.events),
      record.events_per_sec, sweeps.c_str());
  return 0;
}
