// Regenerates Fig. 6: system-wide DRAM requirement vs number of streams
// for the four media types (mp3 / DivX / DVD / HDTV), (a) streaming
// directly from the FutureDisk and (b) through a k = 2 bank of G3 MEMS
// buffer devices (unlimited buffering, per the §5.1.1 relaxation).
//
// The (media, N) grid is evaluated on the parallel sweep engine; rows
// are collected in index order so the table and CSV are byte-identical
// to a serial run.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/table_printer.h"
#include "model/mems_buffer.h"
#include "model/stream.h"
#include "model/timecycle.h"

int main() {
  using namespace memstream;

  const auto latency = bench::PaperConservativeDiskLatency();
  const auto mems = bench::MemsProfileAtRatio(5.0);  // the G3 device

  std::cout << "Fig. 6: DRAM requirement for various media types\n"
            << "  (a) without MEMS buffer: Theorem 1 (disk IO latency "
               "charged at "
            << ToMs(latency(1))
            << " ms -- see bench_common.h calibration note)\n"
            << "  (b) with a k=2 G3 MEMS buffer: Theorem 2 supremum "
               "sizing\n\n";

  TablePrinter table({"Media", "N", "DRAM w/o MEMS [GB]",
                      "DRAM with MEMS [GB]", "Reduction"});
  CsvWriter csv(bench::CsvPath("fig6_dram_requirement"),
                {"media", "bit_rate_bps", "n", "dram_without_gb",
                 "dram_with_gb"});

  // Sweep points, flattened (media x stream count), in emission order.
  struct Point {
    model::StreamClass media;
    std::int64_t n = 0;
  };
  std::vector<Point> points;
  for (const auto& media : model::PaperStreamClasses()) {
    const std::int64_t cap =
        model::MaxStreamsBandwidthBound(300 * kMBps, media.bit_rate);
    // Log-spaced sweep plus points near the disk's bandwidth bound,
    // where the requirement diverges (the figure's right edge).
    std::vector<std::int64_t> stream_counts;
    for (std::int64_t n = 1; n < cap / 2;) {
      stream_counts.push_back(n);
      n = n < 5 ? n + 1 : n * 10 / 3;
    }
    for (double frac : {0.5, 0.7, 0.85, 0.93, 0.97}) {
      stream_counts.push_back(
          static_cast<std::int64_t>(frac * static_cast<double>(cap)));
    }
    std::sort(stream_counts.begin(), stream_counts.end());
    stream_counts.erase(
        std::unique(stream_counts.begin(), stream_counts.end()),
        stream_counts.end());
    if (bench::SmokeMode() && stream_counts.size() > 3) {
      stream_counts.resize(3);
    }
    for (std::int64_t n : stream_counts) {
      if (n > cap || n < 1) continue;
      points.push_back({media, n});
    }
  }

  struct Row {
    bool valid = false;
    double without_gb = 0;
    double with_gb = std::numeric_limits<double>::quiet_NaN();
  };
  exp::SweepRunner runner;
  const auto rows = runner.Map(
      static_cast<std::int64_t>(points.size()),
      [&points, &latency, &mems](exp::TaskContext& ctx) {
        const Point& p = points[static_cast<std::size_t>(ctx.index())];
        Row row;
        model::DeviceProfile disk_profile;
        disk_profile.rate = 300 * kMBps;
        disk_profile.latency = latency(p.n);
        auto without =
            model::TotalBufferSize(p.n, p.media.bit_rate, disk_profile);
        if (!without.ok()) return row;
        row.valid = true;
        row.without_gb = ToGB(without.value());
        if (p.n >= 2) {
          model::MemsBufferParams params;
          params.k = 2;
          params.disk = disk_profile;
          params.mems = mems;
          params.mems_capacity_override =
              std::numeric_limits<double>::infinity();
          auto with_mems =
              model::SolveMemsBuffer(p.n, p.media.bit_rate, params);
          if (with_mems.ok()) {
            row.with_gb = ToGB(with_mems.value().dram_total);
          }
        }
        ctx.AddEvents(1);
        return row;
      });

  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    const Row& row = rows[i];
    if (!row.valid) continue;
    const bool no_mems = std::isnan(row.with_gb);
    table.AddRow(
        {p.media.name, TablePrinter::Cell(p.n),
         TablePrinter::Cell(row.without_gb, 6),
         no_mems ? std::string("-") : TablePrinter::Cell(row.with_gb, 6),
         no_mems ? std::string("-")
                 : TablePrinter::Cell(row.without_gb / row.with_gb, 1) +
                       "x"});
    csv.AddRow(std::vector<std::string>{
        p.media.name, std::to_string(p.media.bit_rate),
        std::to_string(p.n), std::to_string(row.without_gb),
        no_mems ? std::string() : std::to_string(row.with_gb)});
  }
  table.Print(std::cout);

  std::cout << "\nShape check (paper §5.1.1): near full disk utilization "
               "the no-MEMS DRAM requirement spans ~1 GB (HDTV) to ~1 TB "
               "(mp3); the MEMS buffer cuts it by roughly an order of "
               "magnitude.\n";
  std::cout << "CSV: " << bench::CsvPath("fig6_dram_requirement") << "\n";
  bench::RecordSweep("fig6_dram_requirement", runner);
  return 0;
}
