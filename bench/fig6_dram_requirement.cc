// Regenerates Fig. 6: system-wide DRAM requirement vs number of streams
// for the four media types (mp3 / DivX / DVD / HDTV), (a) streaming
// directly from the FutureDisk and (b) through a k = 2 bank of G3 MEMS
// buffer devices (unlimited buffering, per the §5.1.1 relaxation).

#include <algorithm>
#include <cmath>
#include <iostream>
#include <limits>
#include <vector>

#include "bench_common.h"
#include "common/table_printer.h"
#include "model/mems_buffer.h"
#include "model/stream.h"
#include "model/timecycle.h"

int main() {
  using namespace memstream;

  const auto latency = bench::PaperConservativeDiskLatency();
  const auto mems = bench::MemsProfileAtRatio(5.0);  // the G3 device

  std::cout << "Fig. 6: DRAM requirement for various media types\n"
            << "  (a) without MEMS buffer: Theorem 1 (disk IO latency "
               "charged at "
            << ToMs(latency(1))
            << " ms -- see bench_common.h calibration note)\n"
            << "  (b) with a k=2 G3 MEMS buffer: Theorem 2 supremum "
               "sizing\n\n";

  TablePrinter table({"Media", "N", "DRAM w/o MEMS [GB]",
                      "DRAM with MEMS [GB]", "Reduction"});
  CsvWriter csv(bench::CsvPath("fig6_dram_requirement"),
                {"media", "bit_rate_bps", "n", "dram_without_gb",
                 "dram_with_gb"});

  for (const auto& media : model::PaperStreamClasses()) {
    const std::int64_t cap =
        model::MaxStreamsBandwidthBound(300 * kMBps, media.bit_rate);
    // Log-spaced sweep plus points near the disk's bandwidth bound,
    // where the requirement diverges (the figure's right edge).
    std::vector<std::int64_t> stream_counts;
    for (std::int64_t n = 1; n < cap / 2;) {
      stream_counts.push_back(n);
      n = n < 5 ? n + 1 : n * 10 / 3;
    }
    for (double frac : {0.5, 0.7, 0.85, 0.93, 0.97}) {
      stream_counts.push_back(
          static_cast<std::int64_t>(frac * static_cast<double>(cap)));
    }
    std::sort(stream_counts.begin(), stream_counts.end());
    stream_counts.erase(
        std::unique(stream_counts.begin(), stream_counts.end()),
        stream_counts.end());
    for (std::int64_t n : stream_counts) {
      if (n > cap || n < 1) continue;
      model::DeviceProfile disk_profile;
      disk_profile.rate = 300 * kMBps;
      disk_profile.latency = latency(n);
      auto without = model::TotalBufferSize(n, media.bit_rate, disk_profile);
      if (!without.ok()) continue;

      double with_gb = std::numeric_limits<double>::quiet_NaN();
      if (n >= 2) {
        model::MemsBufferParams params;
        params.k = 2;
        params.disk = disk_profile;
        params.mems = mems;
        params.mems_capacity_override =
            std::numeric_limits<double>::infinity();
        auto with_mems = model::SolveMemsBuffer(n, media.bit_rate, params);
        if (with_mems.ok()) with_gb = ToGB(with_mems.value().dram_total);
      }

      const bool no_mems = std::isnan(with_gb);
      table.AddRow(
          {media.name, TablePrinter::Cell(n),
           TablePrinter::Cell(ToGB(without.value()), 6),
           no_mems ? std::string("-") : TablePrinter::Cell(with_gb, 6),
           no_mems ? std::string("-")
                   : TablePrinter::Cell(ToGB(without.value()) / with_gb,
                                        1) +
                         "x"});
      csv.AddRow(std::vector<std::string>{
          media.name, std::to_string(media.bit_rate), std::to_string(n),
          std::to_string(ToGB(without.value())),
          no_mems ? std::string() : std::to_string(with_gb)});
    }
  }
  table.Print(std::cout);

  std::cout << "\nShape check (paper §5.1.1): near full disk utilization "
               "the no-MEMS DRAM requirement spans ~1 GB (HDTV) to ~1 TB "
               "(mp3); the MEMS buffer cuts it by roughly an order of "
               "magnitude.\n";
  std::cout << "CSV: " << bench::CsvPath("fig6_dram_requirement") << "\n";
  return 0;
}
