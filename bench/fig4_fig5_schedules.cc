// Renders the paper's schedule diagrams from actual execution traces:
//
//  Fig. 4 — a single MEMS IO cycle with N = 10 streams through one
//           buffer device: N MEMS->DRAM transfers interleaved with M
//           disk->MEMS transfers;
//  Fig. 5 — N = 45 streams across a k = 3 bank: every third disk IO
//           routed to the same device, 15 DRAM transfers per device per
//           disk transfer.
//
// The pipeline server runs with tracing enabled and the bench prints a
// time-ordered transcript of one steady-state window per scenario.

#include <iostream>
#include <map>

#include "bench_common.h"
#include "model/mems_buffer.h"
#include "model/profiles.h"
#include "server/mems_pipeline_server.h"

namespace {

using namespace memstream;

device::DiskParameters UniformDisk() {
  device::DiskParameters p = device::FutureDisk2007();
  p.inner_rate = p.outer_rate;
  return p;
}

void RunScenario(const char* title, std::int64_t n, std::int64_t k,
                 CsvWriter& csv) {
  auto disk = device::DiskDrive::Create(UniformDisk()).value();
  const BytesPerSecond b = 1 * kMBps;

  model::MemsBufferParams params;
  params.k = k;
  params.disk = model::DiskProfile(disk, n);
  params.mems = model::MemsProfileMaxLatency(
      device::MemsDevice::Create(device::MemsG3()).value());
  auto range = model::FeasibleTdiskRange(n, b, params);
  if (!range.ok()) return;
  auto sizing = model::SolveMemsBuffer(
      n, b, params, std::min(range.value().lower * 1.5,
                             range.value().upper));
  if (!sizing.ok()) return;

  server::MemsPipelineConfig config;
  config.t_disk = sizing.value().t_disk;
  config.t_mems = sizing.value().t_mems_snapped;

  std::vector<device::MemsDevice> bank;
  for (std::int64_t i = 0; i < k; ++i) {
    device::MemsParameters p = device::MemsG3();
    p.name = "MEMS" + std::to_string(i);
    bank.push_back(device::MemsDevice::Create(p).value());
  }
  std::vector<server::StreamSpec> streams;
  const Bytes stride = disk.Capacity() * 0.9 / static_cast<double>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    streams.push_back({i, b, stride * static_cast<double>(i),
                       std::max(stride, 3 * b * config.t_disk)});
  }

  sim::TraceLog trace;
  auto server = server::MemsPipelineServer::Create(
      &disk, std::move(bank), streams, config, &trace);
  if (!server.ok()) {
    std::cout << title << ": " << server.status().ToString() << "\n";
    return;
  }
  const Seconds horizon = config.t_disk * 6;
  if (!server.value().Run(horizon).ok()) return;

  std::cout << title << "\n"
            << "  T_disk = " << ToMs(config.t_disk)
            << " ms, T_mems = " << ToMs(config.t_mems)
            << " ms (M = " << sizing.value().m << " of N = " << n
            << " per Eq. 8), schedule window = one steady-state disk "
               "cycle:\n";

  // Steady-state window: the full disk cycle starting after 4 cycles.
  const Seconds w0 = config.t_disk * 4;
  const Seconds w1 = w0 + config.t_disk;
  std::map<std::string, std::pair<int, int>> per_actor;  // reads, writes
  int shown = 0;
  for (const auto& r : trace.records()) {
    if (r.time < w0 || r.time >= w1) continue;
    if (r.kind != sim::TraceKind::kIoCompleted) continue;
    const bool is_read = r.detail == "MEMS->DRAM read";
    const bool is_write = r.detail == "disk->MEMS write";
    if (!is_read && !is_write) continue;
    auto& counts = per_actor[r.actor];
    (is_read ? counts.first : counts.second) += 1;
    if (shown < 14) {
      std::printf("    t=%8.2f ms  %-6s %-16s stream %2lld  %6.0f kB\n",
                  ToMs(r.time), r.actor.c_str(), r.detail.c_str(),
                  static_cast<long long>(r.stream_id), r.bytes / kKB);
      ++shown;
    }
    csv.AddRow(std::vector<std::string>{
        title, std::to_string(r.time), r.actor, r.detail,
        std::to_string(r.stream_id), std::to_string(r.bytes)});
  }
  if (shown == 14) std::cout << "    ...\n";
  for (const auto& [actor, counts] : per_actor) {
    std::cout << "  " << actor << ": " << counts.first
              << " MEMS->DRAM transfers, " << counts.second
              << " disk->MEMS transfers in the window\n";
  }
  const auto& report = server.value().report();
  std::cout << "  over the whole run: underflows = "
            << report.underflow_events
            << ", MEMS overruns = " << report.mems_overruns << "\n\n";
}

}  // namespace

int main() {
  std::cout << "Figs. 4/5: executed MEMS IO schedules (trace excerpts)\n\n";
  CsvWriter csv(bench::CsvPath("fig4_fig5_schedules"),
                {"scenario", "time_s", "actor", "op", "stream", "bytes"});
  RunScenario("Fig. 4: N=10 streams, single MEMS buffer device", 10, 1,
              csv);
  RunScenario("Fig. 5: N=45 streams, k=3 MEMS bank", 45, 3, csv);
  std::cout << "Shape check: each device performs its share of DRAM "
               "transfers per cycle with disk transfers interleaved "
               "(Fig. 4), and with k=3 every third disk IO lands on the "
               "same device (Fig. 5).\n";
  std::cout << "CSV: " << bench::CsvPath("fig4_fig5_schedules") << "\n";
  return 0;
}
