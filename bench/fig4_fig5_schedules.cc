// Renders the paper's schedule diagrams from actual execution traces:
//
//  Fig. 4 — a single MEMS IO cycle with N = 10 streams through one
//           buffer device: N MEMS->DRAM transfers interleaved with M
//           disk->MEMS transfers;
//  Fig. 5 — N = 45 streams across a k = 3 bank: every third disk IO
//           routed to the same device, 15 DRAM transfers per device per
//           disk transfer.
//
// The pipeline server runs with tracing enabled and the bench prints a
// time-ordered transcript of one steady-state window per scenario. The
// two scenarios execute as parallel sweep tasks; the transcripts are
// printed serially from the collected window records.

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "model/mems_buffer.h"
#include "model/profiles.h"
#include "server/mems_pipeline_server.h"

namespace {

using namespace memstream;

device::DiskParameters UniformDisk() {
  device::DiskParameters p = device::FutureDisk2007();
  p.inner_rate = p.outer_rate;
  return p;
}

struct Scenario {
  const char* title;
  std::int64_t n;
  std::int64_t k;
};

struct WindowRecord {
  Seconds time = 0;
  std::string actor;
  std::string detail;
  std::int64_t stream_id = 0;
  double bytes = 0;
};

struct ScenarioResult {
  bool ran = false;          // sizing feasible and Run() succeeded
  std::string create_error;  // non-empty: Create failed, print and skip
  Seconds t_disk = 0;
  Seconds t_mems = 0;
  std::int64_t m = 0;
  std::vector<WindowRecord> window;  // kIoCompleted within the window
  std::int64_t underflows = 0;
  std::int64_t overruns = 0;
};

ScenarioResult RunScenario(const Scenario& scenario,
                           exp::TaskContext& ctx) {
  ScenarioResult out;
  auto disk = device::DiskDrive::Create(UniformDisk()).value();
  const BytesPerSecond b = 1 * kMBps;
  const std::int64_t n = scenario.n;
  const std::int64_t k = scenario.k;

  model::MemsBufferParams params;
  params.k = k;
  params.disk = model::DiskProfile(disk, n);
  params.mems = model::MemsProfileMaxLatency(
      device::MemsDevice::Create(device::MemsG3()).value());
  auto range = model::FeasibleTdiskRange(n, b, params);
  if (!range.ok()) return out;
  auto sizing = model::SolveMemsBuffer(
      n, b, params, std::min(range.value().lower * 1.5,
                             range.value().upper));
  if (!sizing.ok()) return out;

  server::MemsPipelineConfig config;
  config.t_disk = sizing.value().t_disk;
  config.t_mems = sizing.value().t_mems_snapped;

  std::vector<device::MemsDevice> bank;
  for (std::int64_t i = 0; i < k; ++i) {
    device::MemsParameters p = device::MemsG3();
    p.name = "MEMS" + std::to_string(i);
    bank.push_back(device::MemsDevice::Create(p).value());
  }
  std::vector<server::StreamSpec> streams;
  const Bytes stride = disk.Capacity() * 0.9 / static_cast<double>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    streams.push_back({i, b, stride * static_cast<double>(i),
                       std::max(stride, 3 * b * config.t_disk)});
  }

  sim::TraceLog trace;
  auto server = server::MemsPipelineServer::Create(
      &disk, std::move(bank), streams, config, &trace);
  if (!server.ok()) {
    out.create_error = server.status().ToString();
    return out;
  }
  const Seconds horizon = config.t_disk * 6;
  if (!server.value().Run(horizon).ok()) return out;
  ctx.AddEvents(server.value().report().ios_completed);

  out.ran = true;
  out.t_disk = config.t_disk;
  out.t_mems = config.t_mems;
  out.m = sizing.value().m;

  // Steady-state window: the full disk cycle starting after 4 cycles.
  const Seconds w0 = config.t_disk * 4;
  const Seconds w1 = w0 + config.t_disk;
  for (const auto& r : trace.records()) {
    if (r.time < w0 || r.time >= w1) continue;
    if (r.kind != sim::TraceKind::kIoCompleted) continue;
    if (r.detail != "MEMS->DRAM read" && r.detail != "disk->MEMS write") {
      continue;
    }
    out.window.push_back({r.time, r.actor, r.detail, r.stream_id, r.bytes});
  }
  const auto& report = server.value().report();
  out.underflows = report.qos.underflow_events;
  out.overruns = report.mems_overruns;
  return out;
}

void EmitScenario(const Scenario& scenario, const ScenarioResult& result,
                  CsvWriter& csv) {
  if (!result.create_error.empty()) {
    std::cout << scenario.title << ": " << result.create_error << "\n";
    return;
  }
  if (!result.ran) return;
  std::cout << scenario.title << "\n"
            << "  T_disk = " << ToMs(result.t_disk)
            << " ms, T_mems = " << ToMs(result.t_mems)
            << " ms (M = " << result.m << " of N = " << scenario.n
            << " per Eq. 8), schedule window = one steady-state disk "
               "cycle:\n";

  std::map<std::string, std::pair<int, int>> per_actor;  // reads, writes
  int shown = 0;
  for (const auto& r : result.window) {
    const bool is_read = r.detail == "MEMS->DRAM read";
    auto& counts = per_actor[r.actor];
    (is_read ? counts.first : counts.second) += 1;
    if (shown < 14) {
      std::printf("    t=%8.2f ms  %-6s %-16s stream %2lld  %6.0f kB\n",
                  ToMs(r.time), r.actor.c_str(), r.detail.c_str(),
                  static_cast<long long>(r.stream_id), r.bytes / kKB);
      ++shown;
    }
    csv.AddRow(std::vector<std::string>{
        scenario.title, std::to_string(r.time), r.actor, r.detail,
        std::to_string(r.stream_id), std::to_string(r.bytes)});
  }
  if (shown == 14) std::cout << "    ...\n";
  for (const auto& [actor, counts] : per_actor) {
    std::cout << "  " << actor << ": " << counts.first
              << " MEMS->DRAM transfers, " << counts.second
              << " disk->MEMS transfers in the window\n";
  }
  std::cout << "  over the whole run: underflows = " << result.underflows
            << ", MEMS overruns = " << result.overruns << "\n\n";
}

}  // namespace

int main() {
  std::cout << "Figs. 4/5: executed MEMS IO schedules (trace excerpts)\n\n";
  CsvWriter csv(bench::CsvPath("fig4_fig5_schedules"),
                {"scenario", "time_s", "actor", "op", "stream", "bytes"});

  std::vector<Scenario> scenarios = {
      {"Fig. 4: N=10 streams, single MEMS buffer device", 10, 1},
      {"Fig. 5: N=45 streams, k=3 MEMS bank", 45, 3}};
  if (bench::SmokeMode()) scenarios.resize(1);

  exp::SweepRunner runner;
  const auto results = runner.Map(
      static_cast<std::int64_t>(scenarios.size()),
      [&scenarios](exp::TaskContext& ctx) {
        return RunScenario(
            scenarios[static_cast<std::size_t>(ctx.index())], ctx);
      });
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    EmitScenario(scenarios[i], results[i], csv);
  }

  std::cout << "Shape check: each device performs its share of DRAM "
               "transfers per cycle with disk transfers interleaved "
               "(Fig. 4), and with k=3 every third disk IO lands on the "
               "same device (Fig. 5).\n";
  std::cout << "CSV: " << bench::CsvPath("fig4_fig5_schedules") << "\n";
  bench::RecordSweep("fig4_fig5_schedules", runner);
  return 0;
}
