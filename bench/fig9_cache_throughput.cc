// Regenerates Fig. 9: MEMS cache performance — server throughput (number
// of streams) vs the popularity distribution, for total buffering+caching
// budgets of $50 / $100 / $200 (k = 1 / 2 / 4 cache devices; each device
// displaces 500 MB of DRAM at $20/GB), under striped and replicated
// cache management, against the no-cache baseline.
//
//  (a) average bit-rate 10 KB/s;  (b) 1 MB/s.

#include <iostream>

#include "bench_common.h"
#include "common/table_printer.h"
#include "model/planner.h"

namespace {

using namespace memstream;

const model::Popularity kDistributions[] = {
    {0.01, 0.99}, {0.05, 0.95}, {0.10, 0.90}, {0.20, 0.80}, {0.50, 0.50}};

std::string PopName(const model::Popularity& pop) {
  return std::to_string(static_cast<int>(pop.x * 100)) + ":" +
         std::to_string(static_cast<int>(pop.y * 100));
}

struct Budget {
  Dollars total;
  std::int64_t k;
};

const Budget kBudgets[] = {{50, 1}, {100, 2}, {200, 4}};

}  // namespace

int main() {
  auto disk = bench::AnalyticFutureDisk();
  const auto latency = model::DiskLatencyFn(disk);

  CsvWriter csv(bench::CsvPath("fig9_cache_throughput"),
                {"bit_rate_bps", "budget", "k", "popularity", "config",
                 "streams", "hit_rate"});

  for (BytesPerSecond bit_rate : {10 * kKBps, 1 * kMBps}) {
    std::cout << "Fig. 9" << (bit_rate == 10 * kKBps ? "(a)" : "(b)")
              << ": server throughput, average bit-rate "
              << bit_rate / kKBps << " KB/s\n\n";
    TablePrinter table({"Budget", "Popularity", "w/o MEMS cache",
                        "Replicated", "Striped", "hit(repl)", "hit(str)"});
    for (const Budget& budget : kBudgets) {
      for (const auto& pop : kDistributions) {
        model::CacheSystemConfig config;
        config.total_budget = budget.total;
        config.dram_per_byte = 20.0 / kGB;
        config.mems_device_cost = 10;
        config.popularity = pop;
        config.mems_capacity = 10 * kGB;
        config.content_size = 1000 * kGB;  // 1 device caches 1%
        config.bit_rate = bit_rate;
        config.disk_rate = 300 * kMBps;
        config.disk_latency = latency;
        config.mems = bench::MemsProfileAtRatio(5.0);

        config.k = 0;
        auto none = model::MaxCacheSystemThroughput(config);

        config.k = budget.k;
        config.policy = model::CachePolicy::kReplicated;
        auto replicated = model::MaxCacheSystemThroughput(config);
        config.policy = model::CachePolicy::kStriped;
        auto striped = model::MaxCacheSystemThroughput(config);

        auto cell = [](const Result<model::CacheSystemThroughput>& r) {
          return r.ok() ? TablePrinter::Cell(r.value().total_streams)
                        : std::string("-");
        };
        auto hit = [](const Result<model::CacheSystemThroughput>& r) {
          return r.ok() ? TablePrinter::Cell(r.value().hit_rate, 3)
                        : std::string("-");
        };
        table.AddRow({"$" + TablePrinter::Cell(
                                static_cast<std::int64_t>(budget.total)) +
                          " k=" + TablePrinter::Cell(budget.k),
                      PopName(pop), cell(none), cell(replicated),
                      cell(striped), hit(replicated), hit(striped)});

        auto emit = [&](const char* name,
                        const Result<model::CacheSystemThroughput>& r) {
          csv.AddRow(std::vector<std::string>{
              std::to_string(bit_rate), std::to_string(budget.total),
              std::to_string(budget.k), PopName(pop), name,
              r.ok() ? std::to_string(r.value().total_streams) : "",
              r.ok() ? std::to_string(r.value().hit_rate) : ""});
        };
        emit("none", none);
        emit("replicated", replicated);
        emit("striped", striped);
      }
    }
    table.Print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Shape check (paper §5.2): caching wins for skewed "
               "popularity (1:99 .. 10:90) and loses toward 50:50; "
               "replicated beats striped at 1:99 (all popular content "
               "fits either way, replication has k-fold lower latency); "
               "at 1 MB/s the no-cache system barely improves with "
               "budget (disk-bandwidth-limited), while the cache keeps "
               "adding streams.\n";
  std::cout << "CSV: " << bench::CsvPath("fig9_cache_throughput") << "\n";
  return 0;
}
