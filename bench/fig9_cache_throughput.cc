// Regenerates Fig. 9: MEMS cache performance — server throughput (number
// of streams) vs the popularity distribution, for total buffering+caching
// budgets of $50 / $100 / $200 (k = 1 / 2 / 4 cache devices; each device
// displaces 500 MB of DRAM at $20/GB), under striped and replicated
// cache management, against the no-cache baseline.
//
//  (a) average bit-rate 10 KB/s;  (b) 1 MB/s.
//
// Each (bit-rate, budget, popularity) cell — three planner solves — is
// one parallel sweep task; tables are emitted serially afterwards.

#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/table_printer.h"
#include "model/planner.h"

namespace {

using namespace memstream;

const model::Popularity kDistributions[] = {
    {0.01, 0.99}, {0.05, 0.95}, {0.10, 0.90}, {0.20, 0.80}, {0.50, 0.50}};

std::string PopName(const model::Popularity& pop) {
  return std::to_string(static_cast<int>(pop.x * 100)) + ":" +
         std::to_string(static_cast<int>(pop.y * 100));
}

struct Budget {
  Dollars total;
  std::int64_t k;
};

const Budget kBudgets[] = {{50, 1}, {100, 2}, {200, 4}};

// One planner outcome, flattened for cross-thread collection.
struct Outcome {
  bool ok = false;
  std::int64_t streams = 0;
  double hit_rate = 0;
};

Outcome Flatten(const Result<model::CacheSystemThroughput>& r) {
  Outcome out;
  if (r.ok()) {
    out.ok = true;
    out.streams = r.value().total_streams;
    out.hit_rate = r.value().hit_rate;
  }
  return out;
}

}  // namespace

int main() {
  auto disk = bench::AnalyticFutureDisk();
  const auto latency = model::DiskLatencyFn(disk);

  CsvWriter csv(bench::CsvPath("fig9_cache_throughput"),
                {"bit_rate_bps", "budget", "k", "popularity", "config",
                 "streams", "hit_rate"});

  const std::vector<BytesPerSecond> bit_rates = {10 * kKBps, 1 * kMBps};
  std::vector<model::Popularity> pops(std::begin(kDistributions),
                                      std::end(kDistributions));
  if (bench::SmokeMode() && pops.size() > 2) pops.resize(2);

  struct Cell {
    Outcome none;
    Outcome replicated;
    Outcome striped;
  };
  const std::int64_t budget_count =
      static_cast<std::int64_t>(std::size(kBudgets));
  const std::int64_t pop_count = static_cast<std::int64_t>(pops.size());
  const std::int64_t cells_per_rate = budget_count * pop_count;

  exp::SweepRunner runner;
  const auto cells = runner.Map(
      static_cast<std::int64_t>(bit_rates.size()) * cells_per_rate,
      [&bit_rates, &pops, &latency, cells_per_rate,
       pop_count](exp::TaskContext& ctx) {
        const BytesPerSecond bit_rate =
            bit_rates[static_cast<std::size_t>(ctx.index() /
                                               cells_per_rate)];
        const std::int64_t cell = ctx.index() % cells_per_rate;
        const Budget& budget =
            kBudgets[static_cast<std::size_t>(cell / pop_count)];
        const model::Popularity& pop =
            pops[static_cast<std::size_t>(cell % pop_count)];
        ctx.AddEvents(3);  // three planner solves per cell

        model::CacheSystemConfig config;
        config.total_budget = budget.total;
        config.dram_per_byte = 20.0 / kGB;
        config.mems_device_cost = 10;
        config.popularity = pop;
        config.mems_capacity = 10 * kGB;
        config.content_size = 1000 * kGB;  // 1 device caches 1%
        config.bit_rate = bit_rate;
        config.disk_rate = 300 * kMBps;
        config.disk_latency = latency;
        config.mems = bench::MemsProfileAtRatio(5.0);

        Cell out;
        config.k = 0;
        out.none = Flatten(model::MaxCacheSystemThroughput(config));
        config.k = budget.k;
        config.policy = model::CachePolicy::kReplicated;
        out.replicated = Flatten(model::MaxCacheSystemThroughput(config));
        config.policy = model::CachePolicy::kStriped;
        out.striped = Flatten(model::MaxCacheSystemThroughput(config));
        return out;
      });

  for (std::size_t r = 0; r < bit_rates.size(); ++r) {
    const BytesPerSecond bit_rate = bit_rates[r];
    std::cout << "Fig. 9" << (bit_rate == 10 * kKBps ? "(a)" : "(b)")
              << ": server throughput, average bit-rate "
              << bit_rate / kKBps << " KB/s\n\n";
    TablePrinter table({"Budget", "Popularity", "w/o MEMS cache",
                        "Replicated", "Striped", "hit(repl)", "hit(str)"});
    for (std::int64_t b = 0; b < budget_count; ++b) {
      const Budget& budget = kBudgets[static_cast<std::size_t>(b)];
      for (std::int64_t p = 0; p < pop_count; ++p) {
        const model::Popularity& pop = pops[static_cast<std::size_t>(p)];
        const Cell& cell = cells[static_cast<std::size_t>(
            static_cast<std::int64_t>(r) * cells_per_rate + b * pop_count +
            p)];

        auto count_cell = [](const Outcome& o) {
          return o.ok ? TablePrinter::Cell(o.streams) : std::string("-");
        };
        auto hit = [](const Outcome& o) {
          return o.ok ? TablePrinter::Cell(o.hit_rate, 3)
                      : std::string("-");
        };
        table.AddRow({"$" + TablePrinter::Cell(
                                static_cast<std::int64_t>(budget.total)) +
                          " k=" + TablePrinter::Cell(budget.k),
                      PopName(pop), count_cell(cell.none),
                      count_cell(cell.replicated), count_cell(cell.striped),
                      hit(cell.replicated), hit(cell.striped)});

        auto emit = [&](const char* name, const Outcome& o) {
          csv.AddRow(std::vector<std::string>{
              std::to_string(bit_rate), std::to_string(budget.total),
              std::to_string(budget.k), PopName(pop), name,
              o.ok ? std::to_string(o.streams) : "",
              o.ok ? std::to_string(o.hit_rate) : ""});
        };
        emit("none", cell.none);
        emit("replicated", cell.replicated);
        emit("striped", cell.striped);
      }
    }
    table.Print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Shape check (paper §5.2): caching wins for skewed "
               "popularity (1:99 .. 10:90) and loses toward 50:50; "
               "replicated beats striped at 1:99 (all popular content "
               "fits either way, replication has k-fold lower latency); "
               "at 1 MB/s the no-cache system barely improves with "
               "budget (disk-bandwidth-limited), while the cache keeps "
               "adding streams.\n";
  std::cout << "CSV: " << bench::CsvPath("fig9_cache_throughput") << "\n";
  bench::RecordSweep("fig9_cache_throughput", runner);
  return 0;
}
