// Shared plumbing for the figure/table regenerators: canonical 2007
// devices, the latency-ratio knob of §5.1, and CSV output placement.

#ifndef MEMSTREAM_BENCH_BENCH_COMMON_H_
#define MEMSTREAM_BENCH_BENCH_COMMON_H_

#include <filesystem>
#include <string>

#include "common/csv_writer.h"
#include "common/units.h"
#include "device/device_catalog.h"
#include "model/profiles.h"

namespace memstream::bench {

/// Directory (under the current working directory) where every bench
/// drops its CSV series; created on demand.
inline std::string ResultsDir() {
  std::filesystem::create_directories("bench_results");
  return "bench_results";
}

inline std::string CsvPath(const std::string& name) {
  return ResultsDir() + "/" + name + ".csv";
}

/// The FutureDisk as the paper's analysis sees it: a single 300 MB/s
/// transfer rate.
inline device::DiskDrive AnalyticFutureDisk() {
  device::DiskParameters p = device::FutureDisk2007();
  p.inner_rate = p.outer_rate;
  return device::DiskDrive::Create(p).value();
}

/// The FutureDisk's average access latency (2.8 ms seek + 1.5 ms
/// rotation): the numerator of the §5.1 latency ratio.
inline Seconds FutureDiskAverageLatency() {
  return AnalyticFutureDisk().AverageAccessLatency();
}

/// The disk IO latency charge used by the paper's cost evaluation
/// (§5.1.3 anchor: "the DRAM requirement for the 10MB/s bit-rate range
/// is approximately 1.5GB", which Theorem 1 yields at 29 streams only
/// for L̄_disk = average seek + one full rotation = 5.8 ms). The library's
/// elevator estimate (DiskLatencyFn) is tighter; the figure benches use
/// this conservative constant to reproduce the paper's magnitudes.
inline model::LatencyFn PaperConservativeDiskLatency() {
  auto disk = AnalyticFutureDisk();
  const Seconds charge =
      disk.seek_model().AverageSeekTime() + disk.RotationPeriod();
  return [charge](std::int64_t) { return charge; };
}

/// G3 MEMS profile whose max latency is derived from the latency ratio:
/// L̄_mems = L̄_disk(avg) / ratio. ratio = 5 reproduces the G3 device.
inline model::DeviceProfile MemsProfileAtRatio(double ratio) {
  auto dev = device::MemsDevice::Create(device::MemsG3()).value();
  model::DeviceProfile p = model::MemsProfileMaxLatency(dev);
  p.latency = FutureDiskAverageLatency() / ratio;
  return p;
}

}  // namespace memstream::bench

#endif  // MEMSTREAM_BENCH_BENCH_COMMON_H_
