// Shared plumbing for the figure/table regenerators: canonical 2007
// devices, the latency-ratio knob of §5.1, CSV output placement, and the
// sweep-engine glue (smoke mode, BENCH_sweeps.json cost records).
//
// Concurrency: the converted benches evaluate sweep points on a
// exp::SweepRunner pool, so everything here is either immutable after
// first use (function-local statics, thread-safe under C++ magic-static
// initialization) or returns an independent copy per call.

#ifndef MEMSTREAM_BENCH_BENCH_COMMON_H_
#define MEMSTREAM_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "common/csv_writer.h"
#include "common/units.h"
#include "device/device_catalog.h"
#include "exp/sweep_runner.h"
#include "exp/sweep_stats.h"
#include "model/profiles.h"

namespace memstream::bench {

/// Directory (under the current working directory) where every bench
/// drops its CSV series. Created once per process, on first use.
inline const std::string& ResultsDir() {
  static const std::string dir = [] {
    std::filesystem::create_directories("bench_results");
    return std::string("bench_results");
  }();
  return dir;
}

inline std::string CsvPath(const std::string& name) {
  return ResultsDir() + "/" + name + ".csv";
}

/// True when MEMSTREAM_SMOKE is set: benches shrink their sweeps to a
/// seconds-long spot check (the bench-smoke ctest label runs every
/// binary this way under the sanitizer presets).
inline bool SmokeMode() {
  static const bool smoke = std::getenv("MEMSTREAM_SMOKE") != nullptr;
  return smoke;
}

/// Simulation horizon helper: the full duration normally, a short one in
/// smoke mode.
inline Seconds SmokeDuration(Seconds full, Seconds smoke) {
  return SmokeMode() ? smoke : full;
}

/// The FutureDisk as the paper's analysis sees it: a single 300 MB/s
/// transfer rate. Calibrated once; each call returns an independent copy
/// (DiskDrive carries mutable head state, so sweep tasks must not share
/// one instance).
inline device::DiskDrive AnalyticFutureDisk() {
  static const device::DiskDrive drive = [] {
    device::DiskParameters p = device::FutureDisk2007();
    p.inner_rate = p.outer_rate;
    return device::DiskDrive::Create(p).value();
  }();
  return drive;
}

/// The FutureDisk's average access latency (2.8 ms seek + 1.5 ms
/// rotation): the numerator of the §5.1 latency ratio. Memoized.
inline Seconds FutureDiskAverageLatency() {
  static const Seconds latency = AnalyticFutureDisk().AverageAccessLatency();
  return latency;
}

/// The disk IO latency charge used by the paper's cost evaluation
/// (§5.1.3 anchor: "the DRAM requirement for the 10MB/s bit-rate range
/// is approximately 1.5GB", which Theorem 1 yields at 29 streams only
/// for L̄_disk = average seek + one full rotation = 5.8 ms). The library's
/// elevator estimate (DiskLatencyFn) is tighter; the figure benches use
/// this conservative constant to reproduce the paper's magnitudes.
inline model::LatencyFn PaperConservativeDiskLatency() {
  static const Seconds charge = [] {
    const device::DiskDrive disk = AnalyticFutureDisk();
    return disk.seek_model().AverageSeekTime() + disk.RotationPeriod();
  }();
  return [](std::int64_t) { return charge; };
}

/// G3 MEMS profile whose max latency is derived from the latency ratio:
/// L̄_mems = L̄_disk(avg) / ratio. ratio = 5 reproduces the G3 device.
inline model::DeviceProfile MemsProfileAtRatio(double ratio) {
  static const model::DeviceProfile base = [] {
    auto dev = device::MemsDevice::Create(device::MemsG3()).value();
    return model::MemsProfileMaxLatency(dev);
  }();
  model::DeviceProfile p = base;
  p.latency = FutureDiskAverageLatency() / ratio;
  return p;
}

/// Writes the runner's cumulative cost into
/// bench_results/BENCH_sweeps.json (insert-or-replace by bench name)
/// and echoes a one-line summary on stdout.
inline void RecordSweep(const std::string& bench_name,
                        const exp::SweepRunner& runner) {
  const auto record =
      exp::MakeBenchSweepRecord(bench_name, runner.stats());
  const std::string path = ResultsDir() + "/BENCH_sweeps.json";
  (void)exp::AppendBenchSweepRecord(path, record);
  std::printf(
      "Sweep: %lld tasks on %d thread(s), %.3f s wall, %lld events "
      "(%.0f events/s) -> %s\n",
      static_cast<long long>(record.tasks), record.threads,
      record.wall_seconds, static_cast<long long>(record.events),
      record.events_per_sec, path.c_str());
}

}  // namespace memstream::bench

#endif  // MEMSTREAM_BENCH_BENCH_COMMON_H_
