// google-benchmark microbenchmarks for the library's hot paths: the
// analytical solvers (called inside planner search loops), the IO-queue
// schedulers, the device service models, and the discrete-event engine.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <new>
#include <string>
#include <vector>

#include "common/move_only_function.h"
#include "common/profiler.h"
#include "common/random.h"
#include "device/device_catalog.h"
#include "device/disk_scheduler.h"
#include "farm/placement.h"
#include "model/mems_buffer.h"
#include "model/planner.h"
#include "model/timecycle.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/stream_journal.h"
#include "server/admission.h"
#include "server/timecycle_server.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace memstream {
namespace {

/// Heap allocations since process start (global operator new below).
std::atomic<std::int64_t> g_allocations{0};

/// Attaches an "allocs_per_op" counter to `state`: heap allocations per
/// loop iteration, measured from `allocs_before`. The perf-trajectory
/// harness reads this straight out of the --benchmark_out JSON.
void ReportAllocsPerOp(benchmark::State& state, std::int64_t allocs_before) {
  const auto delta = static_cast<double>(
      g_allocations.load(std::memory_order_relaxed) - allocs_before);
  const auto iters = static_cast<double>(state.iterations());
  state.counters["allocs_per_op"] =
      benchmark::Counter(iters > 0 ? delta / iters : 0);
}

void BM_Theorem1Sizing(benchmark::State& state) {
  model::DeviceProfile disk;
  disk.rate = 300 * kMBps;
  disk.latency = 4.3 * kMillisecond;
  for (auto _ : state) {
    auto s = model::PerStreamBufferSize(state.range(0), 1 * kMBps, disk);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_Theorem1Sizing)->Arg(10)->Arg(100);

void BM_Theorem2Solve(benchmark::State& state) {
  model::MemsBufferParams params;
  params.k = 2;
  params.disk.rate = 300 * kMBps;
  params.disk.latency = 2 * kMillisecond;
  params.mems.rate = 320 * kMBps;
  params.mems.latency = 0.86 * kMillisecond;
  params.mems.capacity = 10 * kGB;
  for (auto _ : state) {
    auto s = model::SolveMemsBuffer(state.range(0), 1 * kMBps, params);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_Theorem2Solve)->Arg(10)->Arg(100);

void BM_CachePlannerMaxThroughput(benchmark::State& state) {
  auto disk = device::DiskDrive::Create(device::FutureDisk2007()).value();
  model::CacheSystemConfig config;
  config.total_budget = 100;
  config.k = 2;
  config.popularity = {0.05, 0.95};
  config.bit_rate = 100 * kKBps;
  config.disk_latency = model::DiskLatencyFn(disk);
  config.mems.rate = 320 * kMBps;
  config.mems.latency = 0.86 * kMillisecond;
  config.mems.capacity = 10 * kGB;
  for (auto _ : state) {
    auto t = model::MaxCacheSystemThroughput(config);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_CachePlannerMaxThroughput);

void BM_ElevatorScheduleOrder(benchmark::State& state) {
  Rng rng(42);
  std::vector<device::IoSpan> batch;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    batch.push_back(
        {rng.NextInt(0, static_cast<std::int64_t>(900 * kGB)), 1 * kMB});
  }
  for (auto _ : state) {
    auto order =
        device::ScheduleOrder(device::SchedulerPolicy::kCLook, 0, batch);
    benchmark::DoNotOptimize(order);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ElevatorScheduleOrder)->Arg(64)->Arg(1024);

void BM_DiskService(benchmark::State& state) {
  auto disk = device::DiskDrive::Create(device::FutureDisk2007()).value();
  Rng rng(7);
  for (auto _ : state) {
    auto t = disk.Service(
        {rng.NextInt(0, static_cast<std::int64_t>(900 * kGB)), 1 * kMB},
        &rng);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_DiskService);

void BM_MemsService(benchmark::State& state) {
  auto mems = device::MemsDevice::Create(device::MemsG3()).value();
  Rng rng(7);
  for (auto _ : state) {
    auto t = mems.Service(
        {rng.NextInt(0, static_cast<std::int64_t>(9 * kGB)), 64 * kKB},
        nullptr);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_MemsService);

// Steady-state push/pop on the flat 4-ary-heap event queue: after the
// warmup fill, every iteration pops the earliest event and pushes a
// replacement. With the small-buffer callbacks this path performs zero
// heap allocations (asserted by event_queue_test).
void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue queue;
  Rng rng(11);
  std::int64_t fired = 0;
  const std::int64_t depth = state.range(0);
  for (std::int64_t i = 0; i < depth; ++i) {
    queue.Push(rng.NextDouble(), [&fired] { ++fired; });
  }
  double horizon = 1.0;
  const std::int64_t allocs_before =
      g_allocations.load(std::memory_order_relaxed);
  for (auto _ : state) {
    Seconds when = 0;
    auto cb = queue.Pop(&when);
    cb();
    horizon += 1e-9;
    queue.Push(when + rng.NextDouble() * horizon, [&fired] { ++fired; });
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(state.iterations());
  ReportAllocsPerOp(state, allocs_before);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(64)->Arg(4096);

// Dispatch cost of the inline move-only callable vs std::function, same
// 32-byte capture. The gap is the shared_ptr/heap indirection the event
// core no longer pays.
void BM_MoveOnlyFunctionDispatch(benchmark::State& state) {
  std::int64_t a = 1, b = 2, c = 3, d = 4;
  MoveOnlyFunction<std::int64_t()> fn([a, b, c, d] { return a + b + c + d; });
  for (auto _ : state) {
    benchmark::DoNotOptimize(fn());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MoveOnlyFunctionDispatch);

void BM_StdFunctionDispatch(benchmark::State& state) {
  std::int64_t a = 1, b = 2, c = 3, d = 4;
  std::function<std::int64_t()> fn([a, b, c, d] { return a + b + c + d; });
  for (auto _ : state) {
    benchmark::DoNotOptimize(fn());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StdFunctionDispatch);

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    std::int64_t fired = 0;
    for (int i = 0; i < 1000; ++i) {
      (void)sim.Schedule(static_cast<double>((i * 7919) % 1000),
                         [&fired] { ++fired; });
    }
    auto n = sim.Run();
    benchmark::DoNotOptimize(n);
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueChurn);

// Cost of one telemetry update through the null-tolerant helpers:
// Arg(0) = disabled (null handles, the pay-for-what-you-use idle cost),
// Arg(1) = enabled (live registry handles).
void BM_MetricHooks(benchmark::State& state) {
  obs::MetricsRegistry registry;
  const bool enabled = state.range(0) != 0;
  obs::Counter* counter = enabled ? registry.counter("bench.ios") : nullptr;
  obs::HistogramMetric* hist =
      enabled ? registry.histogram("bench.slack_ms", {0.0, 10.0, 20})
              : nullptr;
  obs::TimeWeightedGauge* tw =
      enabled ? registry.time_weighted("bench.bytes") : nullptr;
  double now = 0;
  for (auto _ : state) {
    now += 1.0;
    obs::Increment(counter);
    obs::Observe(hist, 5.0);
    obs::Update(tw, now, 42.0);
    benchmark::DoNotOptimize(now);
  }
  state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_MetricHooks)->Arg(0)->Arg(1);

// End-to-end instrumentation overhead: the same DirectStreamingServer run
// with a null registry (Arg 0) vs full telemetry (Arg 1). The two arms
// should be within noise of each other.
void BM_DirectServerTelemetry(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  for (auto _ : state) {
    auto disk = device::DiskDrive::Create(device::FutureDisk2007()).value();
    obs::MetricsRegistry registry;
    server::DirectServerConfig config;
    config.cycle = 0.5;
    config.metrics = enabled ? &registry : nullptr;
    std::vector<server::StreamSpec> streams;
    for (int i = 0; i < 8; ++i) {
      server::StreamSpec s;
      s.id = i;
      s.bit_rate = 1 * kMBps;
      s.disk_offset = static_cast<double>(i) * 10 * kGB;
      s.extent = 5 * kGB;
      streams.push_back(s);
    }
    auto srv = server::DirectStreamingServer::Create(&disk, streams, config);
    (void)srv.value().Run(20.0);
    benchmark::DoNotOptimize(srv.value().report().ios_completed);
  }
}
BENCHMARK(BM_DirectServerTelemetry)->Arg(0)->Arg(1);

// Whole scheduling rounds per second through the batched SoA cycle
// engine (items = cycles, the tentpole target): each iteration runs a
// fresh direct server for 20 simulated seconds at a 0.5 s cycle on the
// allocation-free fast path. Arg = stream count, so the two arms bound
// the per-cycle and per-stream shares of the cost.
void BM_DirectServerCycles(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  std::int64_t cycles = 0;
  for (auto _ : state) {
    auto disk = device::DiskDrive::Create(device::FutureDisk2007()).value();
    server::DirectServerConfig config;
    config.cycle = 0.5;
    std::vector<server::StreamSpec> streams;
    for (std::int64_t i = 0; i < n; ++i) {
      server::StreamSpec s;
      s.id = i;
      s.bit_rate = 1 * kMBps;
      s.disk_offset = static_cast<double>(i) * 10 * kGB;
      s.extent = 5 * kGB;
      streams.push_back(s);
    }
    auto srv = server::DirectStreamingServer::Create(&disk, streams, config);
    (void)srv.value().Run(20.0);
    cycles += srv.value().report().cycles;
  }
  state.SetItemsProcessed(cycles);
}
BENCHMARK(BM_DirectServerCycles)->Arg(8)->Arg(64);

// Admission decisions per second (items = admitted streams) under the
// churny admit/release pattern that keeps returning to recently seen
// (n, B̄) loads — the case the controller's re-solve memo turns into a
// hash probe. Arg = buffer_k: 0 prices against Theorem 1 directly, 2
// against the Theorem 2 MEMS-buffer solve.
void BM_AdmissionChurn(benchmark::State& state) {
  auto disk = device::DiskDrive::Create(device::FutureDisk2007()).value();
  server::AdmissionConfig config;
  config.dram_budget = 4 * kGB;
  config.disk_rate = 300 * kMBps;
  config.disk_latency = model::DiskLatencyFn(disk);
  config.buffer_k = state.range(0);
  config.mems.rate = 320 * kMBps;
  config.mems.latency = 0.86 * kMillisecond;
  config.mems.capacity = 10 * kGB;
  auto ctrl = server::AdmissionController::Create(config);
  for (int i = 0; i < 64; ++i) {
    (void)ctrl.value().TryAdmit(1 * kMBps);
  }
  std::int64_t admitted = 0;
  for (auto _ : state) {
    admitted += ctrl.value().TryAdmit(1 * kMBps).admitted ? 1 : 0;
    (void)ctrl.value().Release(1 * kMBps);
  }
  benchmark::DoNotOptimize(ctrl.value().memo_stats().hits);
  state.SetItemsProcessed(admitted);
}
BENCHMARK(BM_AdmissionChurn)->Arg(0)->Arg(2);

// Cost of one auditor/timeline sample through the null-tolerant helpers:
// Arg(0) = disabled (null sink: one pointer test per site), Arg(1) = a
// live sealed auditor plus a live timeline series on the clean path.
void BM_QosAuditTimelineHooks(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  obs::QosAuditorConfig qc;
  qc.disk_cycle = 1.0;
  obs::QosAuditor live(qc);
  live.AddStream(0, 1 * kMBps, 4 * kMB, obs::QosDomain::kDisk);
  live.Seal();
  obs::QosAuditor* auditor = enabled ? &live : nullptr;
  obs::TimelineRecorder recorder;
  obs::TimelineSeries* series =
      enabled ? recorder.AddSeries("bench.dram_bytes", "bytes") : nullptr;
  double now = 0;
  for (auto _ : state) {
    now += 1.0;
    obs::RecordIo(auditor, 0, 1 * kMB);
    obs::RecordDramLevel(auditor, 0, now, 2 * kMB);
    obs::Record(series, now, 2 * kMB);
    obs::EndDiskCycle(auditor, now, 0.5);
    benchmark::DoNotOptimize(now);
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_QosAuditTimelineHooks)->Arg(0)->Arg(1);

// End-to-end auditor overhead: the same DirectStreamingServer run with no
// auditor (Arg 0) vs a sealed clean-path auditor (Arg 1). The two arms
// should be within noise of each other.
void BM_DirectServerAudit(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  for (auto _ : state) {
    auto disk = device::DiskDrive::Create(device::FutureDisk2007()).value();
    server::DirectServerConfig config;
    config.cycle = 0.5;
    obs::QosAuditorConfig qc;
    qc.disk_cycle = config.cycle;
    obs::QosAuditor auditor(qc);
    std::vector<server::StreamSpec> streams;
    for (int i = 0; i < 8; ++i) {
      server::StreamSpec s;
      s.id = i;
      s.bit_rate = 1 * kMBps;
      s.disk_offset = static_cast<double>(i) * 10 * kGB;
      s.extent = 5 * kGB;
      streams.push_back(s);
      auditor.AddStream(s.id, s.bit_rate, 2 * s.bit_rate * config.cycle,
                        obs::QosDomain::kDisk);
    }
    auditor.Seal();
    config.auditor = enabled ? &auditor : nullptr;
    auto srv = server::DirectStreamingServer::Create(&disk, streams, config);
    (void)srv.value().Run(20.0);
    benchmark::DoNotOptimize(srv.value().report().ios_completed);
  }
}
BENCHMARK(BM_DirectServerAudit)->Arg(0)->Arg(1);

// Cost of one PROF_SCOPE region: Arg(0) = profiler disabled (the null
// sink — one thread-local load and a branch), Arg(1) = enabled (clock
// reads + node lookup + relaxed counter updates). The disabled arm is
// what every instrumented hot path pays when nobody asked for a profile.
void BM_ProfilerScope(benchmark::State& state) {
  auto& profiler = prof::Profiler::Global();
  const bool enabled = state.range(0) != 0;
  profiler.Reset();
  if (enabled) {
    profiler.Enable();
  } else {
    profiler.Disable();
  }
  const std::int64_t allocs_before =
      g_allocations.load(std::memory_order_relaxed);
  for (auto _ : state) {
    PROF_SCOPE("bench.profiler_scope");
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
  ReportAllocsPerOp(state, allocs_before);
  profiler.Disable();
  profiler.Reset();
}
BENCHMARK(BM_ProfilerScope)->Arg(0)->Arg(1);

// Cost of one stream-journal IO sample plus an SLO record through the
// null-tolerant helpers: Arg(0) = disabled (null journal/slo — a
// pointer test per site, the price every server pays when nobody wired
// the observers), Arg(1) = a live journal slot and a live SLO. The
// null arm should price like the disabled BM_ProfilerScope arm, and
// the live arm's allocs_per_op must be zero — registration allocates,
// the steady state never does.
void BM_StreamJournalHooks(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  obs::StreamJournal journal;
  obs::SloMonitor monitor;
  const std::size_t live_slot = journal.EnsureStream(0, 1 * kMBps, 1 * kMB, 0.0);
  obs::StreamJournal* j = enabled ? &journal : nullptr;
  const std::ptrdiff_t slot =
      enabled ? static_cast<std::ptrdiff_t>(live_slot) : -1;
  obs::Slo* slo =
      enabled ? monitor.Add(obs::StandardCycleSlackSlo()) : nullptr;
  double now = 0;
  const std::int64_t allocs_before =
      g_allocations.load(std::memory_order_relaxed);
  for (auto _ : state) {
    now += 0.5;
    obs::JournalIo(j, slot, now, 1 * kMB, 2 * kMB);
    obs::JournalUnderflows(j, slot, now, 0);
    obs::SloRecord(slo, now, 1, 0);
    benchmark::DoNotOptimize(now);
  }
  state.SetItemsProcessed(state.iterations() * 3);
  ReportAllocsPerOp(state, allocs_before);
}
BENCHMARK(BM_StreamJournalHooks)->Arg(0)->Arg(1);

// One catalog lookup through the farm placement at millionfarm scale
// (128 shards, 20k titles): Arg(0) = consistent-hash ring walk,
// Arg(1) = popularity-aware head/tail split. Route sits on this for
// every admission attempt, so it must stay allocation-free —
// allocs_per_op is asserted to be exactly 0 (placement_test holds the
// same line as a unit test).
void BM_PlacementLookup(benchmark::State& state) {
  farm::PlacementConfig config;
  config.num_shards = 128;
  config.num_titles = 20000;
  config.replicas = 4;
  config.virtual_nodes = 64;
  config.zipf_exponent = 0.8;
  config.replication_budget = 0.10;
  const auto policy = state.range(0) != 0
                          ? farm::PlacementPolicy::kPopularityAware
                          : farm::PlacementPolicy::kConsistentHash;
  auto placement = farm::MakePlacement(policy, config);
  std::int64_t title = 0;
  const std::int64_t allocs_before =
      g_allocations.load(std::memory_order_relaxed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement.value()->Lookup(title));
    title = (title + 7919) % config.num_titles;
  }
  state.SetItemsProcessed(state.iterations());
  ReportAllocsPerOp(state, allocs_before);
  // The framework itself allocates O(1) times inside the timed window
  // (including the short estimation runs); a per-op allocation in
  // Lookup would scale with the iteration count instead.
  const std::int64_t delta =
      g_allocations.load(std::memory_order_relaxed) - allocs_before;
  if (delta > static_cast<std::int64_t>(state.iterations()) / 100 + 64) {
    state.SkipWithError("Lookup allocates per op");
  }
}
BENCHMARK(BM_PlacementLookup)->Arg(0)->Arg(1);

void BM_ZipfSample(benchmark::State& state) {
  ZipfDistribution dist(10000, 1.0);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

}  // namespace
}  // namespace memstream

// Counting global operator new: the per-op allocation counters above are
// the same technique the event-core tests use to assert the zero-alloc
// steady state, promoted to a continuously-tracked bench counter.

// GCC pairs `new` expressions with the free() inside these replaced
// operators and warns about the malloc/free crossing; it is intentional
// here — the replacement is malloc-backed on both sides.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  memstream::g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  memstream::g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

// MEMSTREAM_SMOKE trims this binary the same way it trims the sweep
// benches: unless the caller already picked a filter/repetition count,
// run only the event-core + profiler benchmarks once each. ctest's
// bench-smoke label and memstream-perf both lean on this, so the
// trimming lives here instead of being duplicated at every call site.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string smoke_filter =
      "--benchmark_filter=EventQueue|MoveOnlyFunction|ProfilerScope";
  std::string smoke_reps = "--benchmark_repetitions=1";
  if (std::getenv("MEMSTREAM_SMOKE") != nullptr) {
    bool has_filter = false;
    bool has_reps = false;
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--benchmark_filter", 18) == 0) {
        has_filter = true;
      }
      if (std::strncmp(argv[i], "--benchmark_repetitions", 23) == 0) {
        has_reps = true;
      }
    }
    if (!has_filter) args.push_back(smoke_filter.data());
    if (!has_reps) args.push_back(smoke_reps.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
