// Ablation / validation bench: executes the paper's schedules in the
// discrete-event simulator and compares against the analytical sizing.
//
//  1. Fig. 4 scenario: N = 10 streams through a single MEMS buffer
//     device (nested disk / MEMS IO cycles).
//  2. Fig. 5 scenario: N = 45 streams across a k = 3 MEMS bank with
//     round-robin stream routing.
//  3. Mode comparison: direct vs MEMS-buffer vs MEMS-cache servers on
//     the same stream population — analytic DRAM vs simulated peak,
//     underflows, overruns, utilizations.
//  4. Safety margin ablation: shrinking the analytically-sized cycles
//     until the schedule breaks, showing the sizing is tight.
//
// Every simulation (the seven server configs and the six tightness
// points) is one parallel sweep task; tables are assembled serially.

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/table_printer.h"
#include "model/timecycle.h"
#include "server/media_server.h"

namespace {

using namespace memstream;

device::DiskParameters UniformDisk() {
  device::DiskParameters p = device::FutureDisk2007();
  p.inner_rate = p.outer_rate;
  return p;
}

// Result<MediaServerResult> flattened for cross-thread collection.
struct RunOutcome {
  bool ok = false;
  std::string error;
  server::MediaServerResult r;
};

void Report(TablePrinter& table, const std::string& name,
            const RunOutcome& result) {
  if (!result.ok) {
    table.AddRow({name, "-", "-", "-", "-", "-", "-", result.error});
    return;
  }
  const auto& r = result.r;
  table.AddRow(
      {name, TablePrinter::Cell(ToMB(r.analytic_dram_total), 2),
       TablePrinter::Cell(ToMB(r.sim_peak_dram), 2),
       TablePrinter::Cell(r.qos.underflow_events),
       TablePrinter::Cell(r.cycle_overruns),
       TablePrinter::Cell(100 * r.disk_utilization, 1) + "%",
       TablePrinter::Cell(100 * r.mems_utilization, 1) + "%",
       r.qos.underflow_events == 0 && r.cycle_overruns == 0 ? "PASS" : "FAIL"});
}

}  // namespace

int main() {
  std::cout << "Simulation validation: executing the paper's schedules\n\n";

  TablePrinter table({"Scenario", "Analytic DRAM [MB]", "Sim peak [MB]",
                      "Underflows", "Overruns", "Disk util", "MEMS util",
                      "Verdict"});
  CsvWriter csv(bench::CsvPath("sim_validation"),
                {"scenario", "analytic_dram_mb", "sim_peak_mb",
                 "underflows", "overruns", "disk_util", "mems_util"});

  const Seconds duration = bench::SmokeDuration(60, 5);

  // Build the scenario list serially, simulate in parallel.
  std::vector<std::pair<std::string, server::MediaServerConfig>> scenarios;

  // 1. Fig. 4: single MEMS buffer device, 10 streams.
  server::MediaServerConfig fig4;
  fig4.mode = server::ServerMode::kMemsBuffer;
  fig4.disk = UniformDisk();
  fig4.k = 1;
  fig4.num_streams = 10;
  fig4.bit_rate = 1 * kMBps;
  fig4.sim_duration = duration;
  scenarios.emplace_back("Fig.4: buffer k=1 N=10 DVD", fig4);

  // 2. Fig. 5: three-device bank, 45 streams.
  server::MediaServerConfig fig5 = fig4;
  fig5.k = 3;
  fig5.num_streams = 45;
  scenarios.emplace_back("Fig.5: buffer k=3 N=45 DVD", fig5);

  // 3. Mode comparison on a common population.
  server::MediaServerConfig direct;
  direct.mode = server::ServerMode::kDirect;
  direct.disk = UniformDisk();
  direct.num_streams = 60;
  direct.bit_rate = 1 * kMBps;
  direct.sim_duration = duration;
  scenarios.emplace_back("Direct N=60 DVD", direct);

  server::MediaServerConfig buffered = direct;
  buffered.mode = server::ServerMode::kMemsBuffer;
  buffered.k = 2;
  scenarios.emplace_back("Buffer k=2 N=60 DVD", buffered);

  server::MediaServerConfig cached = direct;
  cached.mode = server::ServerMode::kMemsCache;
  cached.k = 2;
  cached.cache_policy = model::CachePolicy::kReplicated;
  cached.cached_fraction_of_streams = 0.5;
  scenarios.emplace_back("Cache repl k=2 N=60 DVD", cached);

  server::MediaServerConfig striped = cached;
  striped.cache_policy = model::CachePolicy::kStriped;
  scenarios.emplace_back("Cache striped k=2 N=60 DVD", striped);

  // Higher-rate sanity point.
  server::MediaServerConfig hdtv = direct;
  hdtv.num_streams = 20;
  hdtv.bit_rate = 10 * kMBps;
  scenarios.emplace_back("Direct N=20 HDTV", hdtv);

  if (bench::SmokeMode() && scenarios.size() > 3) scenarios.resize(3);

  exp::SweepRunner runner;
  const auto outcomes = runner.Map(
      static_cast<std::int64_t>(scenarios.size()),
      [&scenarios](exp::TaskContext& ctx) {
        RunOutcome out;
        auto result = server::RunMediaServer(
            scenarios[static_cast<std::size_t>(ctx.index())].second);
        if (result.ok()) {
          out.ok = true;
          out.r = result.value();
          ctx.AddEvents(out.r.ios_completed);
        } else {
          out.error = result.status().ToString();
        }
        return out;
      });

  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const auto& [name, config] = scenarios[i];
    const RunOutcome& outcome = outcomes[i];
    Report(table, name, outcome);
    if (outcome.ok) {
      const auto& r = outcome.r;
      csv.AddRow(std::vector<std::string>{
          name, std::to_string(ToMB(r.analytic_dram_total)),
          std::to_string(ToMB(r.sim_peak_dram)),
          std::to_string(r.qos.underflow_events),
          std::to_string(r.cycle_overruns),
          std::to_string(r.disk_utilization),
          std::to_string(r.mems_utilization)});
    }
  }
  table.Print(std::cout);

  // 4. Tightness ablation: shrink the analytically-sized direct-mode
  // cycle by a factor f and watch the schedule break.
  std::cout << "\nTightness ablation (direct mode, N=60 DVD): running "
               "with cycle = f x Theorem-1 cycle --\n";
  TablePrinter ablation(
      {"f", "Cycle [ms]", "Underflows", "Overruns", "Underflow time [s]"});
  {
    auto disk = device::DiskDrive::Create(UniformDisk()).value();
    const std::int64_t n = 60;
    const BytesPerSecond b = 1 * kMBps;
    const Seconds nominal =
        model::IoCycleLength(n, b, model::DiskProfile(disk, n)).value();
    const Seconds sim_time = bench::SmokeDuration(30.0, 3.0);
    std::vector<double> factors = {1.2, 1.0, 0.95, 0.9, 0.8, 0.6};
    if (bench::SmokeMode() && factors.size() > 2) factors.resize(2);

    struct AblationRow {
      bool ok = false;
      Seconds cycle = 0;
      std::int64_t underflows = 0;
      std::int64_t overruns = 0;
      Seconds underflow_time = 0;
    };
    const auto rows = runner.Map(
        static_cast<std::int64_t>(factors.size()),
        [&factors, n, b, nominal, sim_time](exp::TaskContext& ctx) {
          const double f =
              factors[static_cast<std::size_t>(ctx.index())];
          AblationRow row;
          // Each task needs its own drive: DiskDrive carries mutable
          // head state.
          auto fresh = device::DiskDrive::Create(UniformDisk()).value();
          server::DirectServerConfig config;
          config.cycle = nominal * f;
          std::vector<server::StreamSpec> streams;
          const Bytes stride = fresh.Capacity() * 0.9 / n;
          for (std::int64_t i = 0; i < n; ++i) {
            streams.push_back({i, b, stride * static_cast<double>(i),
                               std::max(stride, 3 * b * nominal)});
          }
          auto server = server::DirectStreamingServer::Create(
              &fresh, streams, config);
          if (!server.ok() || !server.value().Run(sim_time).ok()) {
            return row;
          }
          const auto& r = server.value().report();
          ctx.AddEvents(r.ios_completed);
          row.ok = true;
          row.cycle = config.cycle;
          row.underflows = r.qos.underflow_events;
          row.overruns = r.cycle_overruns;
          row.underflow_time = r.qos.underflow_time;
          return row;
        });
    for (std::size_t i = 0; i < factors.size(); ++i) {
      const AblationRow& row = rows[i];
      if (!row.ok) {
        ablation.AddRow(
            {TablePrinter::Cell(factors[i], 2), "-", "-", "-", "-"});
        continue;
      }
      ablation.AddRow({TablePrinter::Cell(factors[i], 2),
                       TablePrinter::Cell(ToMs(row.cycle), 1),
                       TablePrinter::Cell(row.underflows),
                       TablePrinter::Cell(row.overruns),
                       TablePrinter::Cell(row.underflow_time, 3)});
    }
  }
  ablation.Print(std::cout);
  std::cout << "\nCSV: " << bench::CsvPath("sim_validation") << "\n";
  bench::RecordSweep("sim_validation", runner);
  return 0;
}
