// Ablation bench over the CMU MEMS generations (Schlosser et al.): the
// paper evaluates only the G3 prediction; here the same buffer and cache
// experiments run against the conservative G1 and intermediate G2 models
// to show how the conclusions depend on the device generation.
//
// Each generation's buffer solve (a 17-point k search) and cache solve
// runs as a parallel sweep task; tables are emitted serially.

#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/table_printer.h"
#include "model/mems_buffer.h"
#include "model/planner.h"
#include "model/timecycle.h"

int main() {
  using namespace memstream;

  auto disk = bench::AnalyticFutureDisk();
  const auto latency = model::DiskLatencyFn(disk);

  std::vector<device::MemsParameters> generations = {
      device::MemsG1(), device::MemsG2(), device::MemsG3()};
  if (bench::SmokeMode() && generations.size() > 1) {
    generations.erase(generations.begin(), generations.end() - 1);
  }

  std::cout << "MEMS generations ablation (100 KB/s streams)\n\n";

  // --- Buffer experiment: DRAM needed for N = 1000 streams ----------------
  const std::int64_t n = 1000;
  model::DeviceProfile disk_profile;
  disk_profile.rate = 300 * kMBps;
  disk_profile.latency = latency(n);
  auto direct = model::TotalBufferSize(n, 100 * kKBps, disk_profile);

  TablePrinter buffer_table({"Device", "Rate [MB/s]", "Max latency [ms]",
                             "k needed", "DRAM [MB]", "vs direct"});
  CsvWriter csv(bench::CsvPath("ablation_generations"),
                {"device", "rate_mbps", "max_latency_ms", "k", "dram_mb",
                 "cache_streams"});
  if (direct.ok()) {
    buffer_table.AddRow({"(no MEMS)", "-", "-", "-",
                         TablePrinter::Cell(ToMB(direct.value()), 1),
                         "1.0x"});
  }

  struct BufferRow {
    bool no_bank = false;  // MinBufferDevices failed: dashes row
    bool ok = false;
    double rate_mbps = 0;
    double max_latency_ms = 0;
    std::int64_t best_k = 0;
    Bytes best_dram = 0;
  };
  exp::SweepRunner runner;
  const auto buffer_rows = runner.Map(
      static_cast<std::int64_t>(generations.size()),
      [&generations, &disk_profile, &direct, n](exp::TaskContext& ctx) {
        const auto& params =
            generations[static_cast<std::size_t>(ctx.index())];
        BufferRow row;
        auto dev = device::MemsDevice::Create(params);
        if (!dev.ok()) return row;
        model::DeviceProfile mems =
            model::MemsProfileMaxLatency(dev.value());
        // Smallest workable bank, then grow while the DRAM bill keeps
        // falling (a minimal bank runs near saturation, where Theorem
        // 2's C — and with it the DRAM requirement — blows up).
        auto k_min = model::MinBufferDevices(n, 100 * kKBps, mems.rate);
        if (!k_min.ok()) {
          row.no_bank = true;
          return row;
        }
        for (std::int64_t k = k_min.value(); k <= k_min.value() + 16;
             ++k) {
          model::MemsBufferParams buffer;
          buffer.k = k;
          buffer.disk = disk_profile;
          buffer.mems = mems;
          auto sized = model::SolveMemsBuffer(n, 100 * kKBps, buffer);
          ctx.AddEvents(1);
          if (!sized.ok()) continue;
          if (row.best_k == 0 ||
              sized.value().dram_total < row.best_dram) {
            row.best_k = k;
            row.best_dram = sized.value().dram_total;
          }
        }
        if (row.best_k == 0 || !direct.ok()) return row;
        row.ok = true;
        row.rate_mbps = mems.rate / kMBps;
        row.max_latency_ms = ToMs(mems.latency);
        return row;
      });
  for (std::size_t i = 0; i < generations.size(); ++i) {
    const auto& params = generations[i];
    const BufferRow& row = buffer_rows[i];
    if (row.no_bank) {
      buffer_table.AddRow({params.name, "-", "-", "-", "-", "-"});
      continue;
    }
    if (!row.ok) continue;
    buffer_table.AddRow(
        {params.name, TablePrinter::Cell(row.rate_mbps, 1),
         TablePrinter::Cell(row.max_latency_ms, 2),
         TablePrinter::Cell(row.best_k),
         TablePrinter::Cell(ToMB(row.best_dram), 1),
         TablePrinter::Cell(direct.value() / row.best_dram, 1) + "x"});
    csv.AddRow(std::vector<std::string>{
        params.name, std::to_string(row.rate_mbps),
        std::to_string(row.max_latency_ms), std::to_string(row.best_k),
        std::to_string(ToMB(row.best_dram)), ""});
  }
  std::cout << "Buffer configuration (N = 1000):\n";
  buffer_table.Print(std::cout);

  // --- Cache experiment: Fig.-9-style throughput at $100, 5:95 ------------
  std::cout << "\nCache configuration ($100 budget, 5:95 popularity, "
               "striped, best k):\n";
  TablePrinter cache_table({"Device", "Best k", "Streams", "vs no cache"});
  model::CacheSystemConfig config;
  config.total_budget = 100;
  config.dram_per_byte = 20.0 / kGB;
  config.mems_device_cost = 10;
  config.policy = model::CachePolicy::kStriped;
  config.popularity = {0.05, 0.95};
  config.content_size = 1000 * kGB;
  config.bit_rate = 100 * kKBps;
  config.disk_rate = 300 * kMBps;
  config.disk_latency = latency;

  config.k = 0;
  auto baseline = model::MaxCacheSystemThroughput(config);
  if (baseline.ok()) {
    cache_table.AddRow({"(no cache)", "0",
                        TablePrinter::Cell(baseline.value().total_streams),
                        "1.00x"});
  }

  struct CacheRow {
    bool ok = false;
    std::int64_t best_k = 0;
    std::int64_t streams = 0;
  };
  const auto cache_rows = runner.Map(
      static_cast<std::int64_t>(generations.size()),
      [&generations, &config, &baseline](exp::TaskContext& ctx) {
        const auto& params =
            generations[static_cast<std::size_t>(ctx.index())];
        CacheRow row;
        ctx.AddEvents(1);
        auto dev = device::MemsDevice::Create(params);
        if (!dev.ok()) return row;
        model::CacheSystemConfig local = config;
        local.mems = model::MemsProfileMaxLatency(dev.value());
        local.mems_capacity = params.capacity;
        auto best_k = model::BestCacheBankSize(local, 8);
        if (!best_k.ok() || !baseline.ok()) return row;
        local.k = best_k.value();
        auto result = model::MaxCacheSystemThroughput(local);
        if (!result.ok()) return row;
        row.ok = true;
        row.best_k = best_k.value();
        row.streams = result.value().total_streams;
        return row;
      });
  for (std::size_t i = 0; i < generations.size(); ++i) {
    const auto& params = generations[i];
    const CacheRow& row = cache_rows[i];
    if (!row.ok) continue;
    cache_table.AddRow(
        {params.name, TablePrinter::Cell(row.best_k),
         TablePrinter::Cell(row.streams),
         TablePrinter::Cell(
             static_cast<double>(row.streams) /
                 static_cast<double>(baseline.value().total_streams),
             2) +
             "x"});
    csv.AddRow(std::vector<std::string>{
        params.name, "", "", std::to_string(row.best_k), "",
        std::to_string(row.streams)});
  }
  cache_table.Print(std::cout);

  std::cout << "\nReading: even the conservative G1 postulates already "
               "beat DRAM-only buffering (they are slower but just as "
               "cheap per byte); each generation shrinks both the bank "
               "size and the residual DRAM further.\n";
  std::cout << "CSV: " << bench::CsvPath("ablation_generations") << "\n";
  bench::RecordSweep("ablation_generations", runner);
  return 0;
}
