// Ablation bench over the CMU MEMS generations (Schlosser et al.): the
// paper evaluates only the G3 prediction; here the same buffer and cache
// experiments run against the conservative G1 and intermediate G2 models
// to show how the conclusions depend on the device generation.

#include <iostream>

#include "bench_common.h"
#include "common/table_printer.h"
#include "model/mems_buffer.h"
#include "model/planner.h"
#include "model/timecycle.h"

int main() {
  using namespace memstream;

  auto disk = bench::AnalyticFutureDisk();
  const auto latency = model::DiskLatencyFn(disk);

  const device::MemsParameters generations[] = {
      device::MemsG1(), device::MemsG2(), device::MemsG3()};

  std::cout << "MEMS generations ablation (100 KB/s streams)\n\n";

  // --- Buffer experiment: DRAM needed for N = 1000 streams ----------------
  const std::int64_t n = 1000;
  model::DeviceProfile disk_profile;
  disk_profile.rate = 300 * kMBps;
  disk_profile.latency = latency(n);
  auto direct = model::TotalBufferSize(n, 100 * kKBps, disk_profile);

  TablePrinter buffer_table({"Device", "Rate [MB/s]", "Max latency [ms]",
                             "k needed", "DRAM [MB]", "vs direct"});
  CsvWriter csv(bench::CsvPath("ablation_generations"),
                {"device", "rate_mbps", "max_latency_ms", "k", "dram_mb",
                 "cache_streams"});
  if (direct.ok()) {
    buffer_table.AddRow({"(no MEMS)", "-", "-", "-",
                         TablePrinter::Cell(ToMB(direct.value()), 1),
                         "1.0x"});
  }
  for (const auto& params : generations) {
    auto dev = device::MemsDevice::Create(params);
    if (!dev.ok()) continue;
    model::DeviceProfile mems = model::MemsProfileMaxLatency(dev.value());
    // Smallest workable bank, then grow while the DRAM bill keeps
    // falling (a minimal bank runs near saturation, where Theorem 2's C
    // — and with it the DRAM requirement — blows up).
    auto k_min = model::MinBufferDevices(n, 100 * kKBps, mems.rate);
    if (!k_min.ok()) {
      buffer_table.AddRow({params.name, "-", "-", "-", "-", "-"});
      continue;
    }
    std::int64_t best_k = 0;
    Bytes best_dram = 0;
    for (std::int64_t k = k_min.value(); k <= k_min.value() + 16; ++k) {
      model::MemsBufferParams buffer;
      buffer.k = k;
      buffer.disk = disk_profile;
      buffer.mems = mems;
      auto sized = model::SolveMemsBuffer(n, 100 * kKBps, buffer);
      if (!sized.ok()) continue;
      if (best_k == 0 || sized.value().dram_total < best_dram) {
        best_k = k;
        best_dram = sized.value().dram_total;
      }
    }
    if (best_k == 0 || !direct.ok()) continue;
    buffer_table.AddRow(
        {params.name, TablePrinter::Cell(mems.rate / kMBps, 1),
         TablePrinter::Cell(ToMs(mems.latency), 2),
         TablePrinter::Cell(best_k),
         TablePrinter::Cell(ToMB(best_dram), 1),
         TablePrinter::Cell(direct.value() / best_dram, 1) + "x"});
    csv.AddRow(std::vector<std::string>{
        params.name, std::to_string(mems.rate / kMBps),
        std::to_string(ToMs(mems.latency)), std::to_string(best_k),
        std::to_string(ToMB(best_dram)), ""});
  }
  std::cout << "Buffer configuration (N = 1000):\n";
  buffer_table.Print(std::cout);

  // --- Cache experiment: Fig.-9-style throughput at $100, 5:95 ------------
  std::cout << "\nCache configuration ($100 budget, 5:95 popularity, "
               "striped, best k):\n";
  TablePrinter cache_table({"Device", "Best k", "Streams", "vs no cache"});
  model::CacheSystemConfig config;
  config.total_budget = 100;
  config.dram_per_byte = 20.0 / kGB;
  config.mems_device_cost = 10;
  config.policy = model::CachePolicy::kStriped;
  config.popularity = {0.05, 0.95};
  config.content_size = 1000 * kGB;
  config.bit_rate = 100 * kKBps;
  config.disk_rate = 300 * kMBps;
  config.disk_latency = latency;

  config.k = 0;
  auto baseline = model::MaxCacheSystemThroughput(config);
  if (baseline.ok()) {
    cache_table.AddRow({"(no cache)", "0",
                        TablePrinter::Cell(baseline.value().total_streams),
                        "1.00x"});
  }
  for (const auto& params : generations) {
    auto dev = device::MemsDevice::Create(params);
    if (!dev.ok()) continue;
    config.mems = model::MemsProfileMaxLatency(dev.value());
    config.mems_capacity = params.capacity;
    auto best_k = model::BestCacheBankSize(config, 8);
    if (!best_k.ok() || !baseline.ok()) continue;
    config.k = best_k.value();
    auto result = model::MaxCacheSystemThroughput(config);
    if (!result.ok()) continue;
    cache_table.AddRow(
        {params.name, TablePrinter::Cell(best_k.value()),
         TablePrinter::Cell(result.value().total_streams),
         TablePrinter::Cell(
             static_cast<double>(result.value().total_streams) /
                 static_cast<double>(baseline.value().total_streams),
             2) +
             "x"});
    csv.AddRow(std::vector<std::string>{
        params.name, "", "", std::to_string(best_k.value()), "",
        std::to_string(result.value().total_streams)});
  }
  cache_table.Print(std::cout);

  std::cout << "\nReading: even the conservative G1 postulates already "
               "beat DRAM-only buffering (they are slower but just as "
               "cheap per byte); each generation shrinks both the bank "
               "size and the residual DRAM further.\n";
  std::cout << "CSV: " << bench::CsvPath("ablation_generations") << "\n";
  return 0;
}
