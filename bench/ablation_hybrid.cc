// Ablation bench for the §7 future-work extension: splitting the MEMS
// bank between buffering and caching. For each popularity distribution,
// compares the best pure-cache, pure-buffer, and hybrid splits at a
// fixed $100 budget, 100 KB/s streams.
//
// Each popularity distribution (the pure-k search plus the hybrid plan)
// is one parallel sweep task.

#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/table_printer.h"
#include "model/hybrid.h"

int main() {
  using namespace memstream;

  auto disk = bench::AnalyticFutureDisk();

  model::HybridConfig config;
  config.base.total_budget = 100;
  config.base.dram_per_byte = 20.0 / kGB;
  config.base.mems_device_cost = 10;
  config.base.policy = model::CachePolicy::kStriped;
  config.base.mems_capacity = 10 * kGB;
  config.base.content_size = 1000 * kGB;
  config.base.bit_rate = 100 * kKBps;
  config.base.disk_rate = 300 * kMBps;
  config.base.disk_latency = model::DiskLatencyFn(disk);
  config.base.mems = bench::MemsProfileAtRatio(5.0);
  config.max_devices = 8;

  std::vector<model::Popularity> distributions = {
      {0.01, 0.99}, {0.05, 0.95}, {0.10, 0.90}, {0.20, 0.80}, {0.50, 0.50}};
  if (bench::SmokeMode() && distributions.size() > 2) {
    distributions.resize(2);
  }

  std::cout << "Hybrid buffer+cache ablation ($100 budget, 100 KB/s)\n\n";
  TablePrinter table({"Popularity", "No MEMS", "Best cache-only",
                      "Best buffer-only", "Hybrid (kb,kc)",
                      "Hybrid streams", "Gain vs best pure"});
  CsvWriter csv(bench::CsvPath("ablation_hybrid"),
                {"popularity_x", "no_mems", "cache_only", "buffer_only",
                 "k_buffer", "k_cache", "hybrid"});

  struct Row {
    bool ok = false;
    std::int64_t none = 0;
    std::int64_t best_cache = 0;
    std::int64_t best_buffer = 0;
    std::int64_t k_buffer = 0;
    std::int64_t k_cache = 0;
    std::int64_t hybrid = 0;
  };
  exp::SweepRunner runner;
  const auto rows = runner.Map(
      static_cast<std::int64_t>(distributions.size()),
      [&distributions, &config](exp::TaskContext& ctx) {
        Row row;
        model::HybridConfig local = config;
        local.base.popularity =
            distributions[static_cast<std::size_t>(ctx.index())];
        auto none = model::EvaluateHybridSplit(local, 0, 0);
        for (std::int64_t k = 1; k <= local.max_devices; ++k) {
          ctx.AddEvents(2);
          auto cache = model::EvaluateHybridSplit(local, 0, k);
          if (cache.ok()) {
            row.best_cache =
                std::max(row.best_cache, cache.value().total_streams);
          }
          auto buffer = model::EvaluateHybridSplit(local, k, 0);
          if (buffer.ok()) {
            row.best_buffer =
                std::max(row.best_buffer, buffer.value().total_streams);
          }
        }
        auto plan = model::PlanHybrid(local);
        if (!none.ok() || !plan.ok()) return row;
        row.ok = true;
        row.none = none.value().total_streams;
        row.k_buffer = plan.value().k_buffer;
        row.k_cache = plan.value().k_cache;
        row.hybrid = plan.value().throughput.total_streams;
        return row;
      });

  for (std::size_t i = 0; i < distributions.size(); ++i) {
    const auto& pop = distributions[i];
    const Row& row = rows[i];
    if (!row.ok) continue;
    const std::int64_t pure_best =
        std::max({row.none, row.best_cache, row.best_buffer});
    table.AddRow(
        {std::to_string(static_cast<int>(pop.x * 100)) + ":" +
             std::to_string(static_cast<int>(pop.y * 100)),
         TablePrinter::Cell(row.none), TablePrinter::Cell(row.best_cache),
         TablePrinter::Cell(row.best_buffer),
         "(" + TablePrinter::Cell(row.k_buffer) + "," +
             TablePrinter::Cell(row.k_cache) + ")",
         TablePrinter::Cell(row.hybrid),
         TablePrinter::Cell(
             100.0 * (static_cast<double>(row.hybrid) /
                          static_cast<double>(pure_best) -
                      1.0),
             1) +
             "%"});
    csv.AddRow(std::vector<std::string>{
        std::to_string(pop.x), std::to_string(row.none),
        std::to_string(row.best_cache), std::to_string(row.best_buffer),
        std::to_string(row.k_buffer), std::to_string(row.k_cache),
        std::to_string(row.hybrid)});
  }
  table.Print(std::cout);
  std::cout << "\nCSV: " << bench::CsvPath("ablation_hybrid") << "\n";
  bench::RecordSweep("ablation_hybrid", runner);
  return 0;
}
