// Ablation bench for the §7 future-work extension: splitting the MEMS
// bank between buffering and caching. For each popularity distribution,
// compares the best pure-cache, pure-buffer, and hybrid splits at a
// fixed $100 budget, 100 KB/s streams.

#include <iostream>

#include "bench_common.h"
#include "common/table_printer.h"
#include "model/hybrid.h"

int main() {
  using namespace memstream;

  auto disk = bench::AnalyticFutureDisk();

  model::HybridConfig config;
  config.base.total_budget = 100;
  config.base.dram_per_byte = 20.0 / kGB;
  config.base.mems_device_cost = 10;
  config.base.policy = model::CachePolicy::kStriped;
  config.base.mems_capacity = 10 * kGB;
  config.base.content_size = 1000 * kGB;
  config.base.bit_rate = 100 * kKBps;
  config.base.disk_rate = 300 * kMBps;
  config.base.disk_latency = model::DiskLatencyFn(disk);
  config.base.mems = bench::MemsProfileAtRatio(5.0);
  config.max_devices = 8;

  const model::Popularity distributions[] = {
      {0.01, 0.99}, {0.05, 0.95}, {0.10, 0.90}, {0.20, 0.80}, {0.50, 0.50}};

  std::cout << "Hybrid buffer+cache ablation ($100 budget, 100 KB/s)\n\n";
  TablePrinter table({"Popularity", "No MEMS", "Best cache-only",
                      "Best buffer-only", "Hybrid (kb,kc)",
                      "Hybrid streams", "Gain vs best pure"});
  CsvWriter csv(bench::CsvPath("ablation_hybrid"),
                {"popularity_x", "no_mems", "cache_only", "buffer_only",
                 "k_buffer", "k_cache", "hybrid"});

  for (const auto& pop : distributions) {
    config.base.popularity = pop;
    auto none = model::EvaluateHybridSplit(config, 0, 0);
    std::int64_t best_cache = 0, best_buffer = 0;
    for (std::int64_t k = 1; k <= config.max_devices; ++k) {
      auto cache = model::EvaluateHybridSplit(config, 0, k);
      if (cache.ok()) {
        best_cache = std::max(best_cache, cache.value().total_streams);
      }
      auto buffer = model::EvaluateHybridSplit(config, k, 0);
      if (buffer.ok()) {
        best_buffer = std::max(best_buffer, buffer.value().total_streams);
      }
    }
    auto plan = model::PlanHybrid(config);
    if (!none.ok() || !plan.ok()) continue;

    const std::int64_t pure_best =
        std::max({none.value().total_streams, best_cache, best_buffer});
    const std::int64_t hybrid = plan.value().throughput.total_streams;
    table.AddRow(
        {std::to_string(static_cast<int>(pop.x * 100)) + ":" +
             std::to_string(static_cast<int>(pop.y * 100)),
         TablePrinter::Cell(none.value().total_streams),
         TablePrinter::Cell(best_cache), TablePrinter::Cell(best_buffer),
         "(" + TablePrinter::Cell(plan.value().k_buffer) + "," +
             TablePrinter::Cell(plan.value().k_cache) + ")",
         TablePrinter::Cell(hybrid),
         TablePrinter::Cell(
             100.0 * (static_cast<double>(hybrid) /
                          static_cast<double>(pure_best) -
                      1.0),
             1) +
             "%"});
    csv.AddRow(std::vector<std::string>{
        std::to_string(pop.x),
        std::to_string(none.value().total_streams),
        std::to_string(best_cache), std::to_string(best_buffer),
        std::to_string(plan.value().k_buffer),
        std::to_string(plan.value().k_cache), std::to_string(hybrid)});
  }
  table.Print(std::cout);
  std::cout << "\nCSV: " << bench::CsvPath("ablation_hybrid") << "\n";
  return 0;
}
