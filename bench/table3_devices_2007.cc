// Regenerates Table 3: performance characteristics of the 2007 case-study
// devices (FutureDisk, G3 MEMS, DRAM), plus the derived latencies our
// models compute from them (average disk access, max/average MEMS access,
// and the §5.1 latency ratio).

#include <iostream>

#include "bench_common.h"
#include "common/table_printer.h"

int main() {
  using namespace memstream;

  std::cout << "Table 3: Storage devices in the year 2007 (paper values)\n\n";
  TablePrinter table({"Parameter", "FutureDisk", "G3 MEMS", "DRAM"});
  const auto cols = device::Table3Columns();
  table.AddRow({"RPM", cols[0].rpm, cols[1].rpm, cols[2].rpm});
  table.AddRow({"Max. bandwidth [MB/s]",
                TablePrinter::Cell(cols[0].max_bandwidth_mbps, 0),
                TablePrinter::Cell(cols[1].max_bandwidth_mbps, 0),
                TablePrinter::Cell(cols[2].max_bandwidth_mbps, 0)});
  table.AddRow({"Average seek [ms]", cols[0].average_seek_ms,
                cols[1].average_seek_ms, cols[2].average_seek_ms});
  table.AddRow({"Full stroke seek [ms]", cols[0].full_stroke_seek_ms,
                cols[1].full_stroke_seek_ms, cols[2].full_stroke_seek_ms});
  table.AddRow({"X settle time [ms]", cols[0].x_settle_ms,
                cols[1].x_settle_ms, cols[2].x_settle_ms});
  table.AddRow({"Capacity per device [GB]",
                TablePrinter::Cell(cols[0].capacity_gb, 0),
                TablePrinter::Cell(cols[1].capacity_gb, 0),
                TablePrinter::Cell(cols[2].capacity_gb, 0)});
  table.AddRow({"Cost/GB [$]", TablePrinter::Cell(cols[0].cost_per_gb, 1),
                TablePrinter::Cell(cols[1].cost_per_gb, 1),
                TablePrinter::Cell(cols[2].cost_per_gb, 1)});
  table.AddRow({"Cost/device [$]", cols[0].cost_per_device,
                cols[1].cost_per_device, cols[2].cost_per_device});
  table.Print(std::cout);

  auto disk = bench::AnalyticFutureDisk();
  auto mems = device::MemsDevice::Create(device::MemsG3()).value();
  std::cout << "\nDerived model quantities:\n";
  TablePrinter derived({"Quantity", "Value"});
  derived.AddRow({"Disk average access latency [ms]",
                  TablePrinter::Cell(ToMs(disk.AverageAccessLatency()), 2)});
  derived.AddRow({"Disk rotation period [ms]",
                  TablePrinter::Cell(ToMs(disk.RotationPeriod()), 2)});
  derived.AddRow({"MEMS max access latency [ms]",
                  TablePrinter::Cell(ToMs(mems.MaxAccessLatency()), 2)});
  derived.AddRow(
      {"MEMS average access latency [ms]",
       TablePrinter::Cell(ToMs(mems.AverageAccessLatency()), 2)});
  derived.AddRow(
      {"Latency ratio (disk avg / MEMS max)",
       TablePrinter::Cell(
           disk.AverageAccessLatency() / mems.MaxAccessLatency(), 2)});
  derived.Print(std::cout);

  CsvWriter csv(bench::CsvPath("table3_devices_2007"),
                {"device", "max_bandwidth_mbps", "capacity_gb",
                 "cost_per_gb"});
  for (const auto& col : cols) {
    csv.AddRow(std::vector<std::string>{
        col.name, std::to_string(col.max_bandwidth_mbps),
        std::to_string(col.capacity_gb), std::to_string(col.cost_per_gb)});
  }
  std::cout << "\nCSV: " << bench::CsvPath("table3_devices_2007") << "\n";
  return 0;
}
