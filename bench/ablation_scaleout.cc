// Scale-out extension bench: a farm of FutureDisks under one shared DRAM
// budget, with and without per-disk MEMS buffer banks — where does the
// farm's bottleneck move, and how much farm the MEMS buffer saves. The
// plans are cross-validated by executing a sampled configuration.
//
// Each farm size (a direct plan plus a buffered plan) is one parallel
// sweep task; the sampled simulation runs as another.

#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/table_printer.h"
#include "farm/sharded_farm.h"
#include "model/scale_out.h"
#include "model/timecycle.h"

int main() {
  using namespace memstream;

  auto disk = bench::AnalyticFutureDisk();
  const auto latency = model::DiskLatencyFn(disk);

  std::cout << "Scale-out ablation: disk farm under a shared 10 GB DRAM "
               "budget (DivX 100 KB/s streams)\n\n";
  TablePrinter table({"Disks", "Streams (direct)", "per-disk",
                      "Streams (k=2 buffers)", "per-disk", "Gain",
                      "MEMS devices"});
  CsvWriter csv(bench::CsvPath("ablation_scaleout"),
                {"disks", "direct_total", "buffered_total", "gain"});

  std::vector<std::int64_t> farm_sizes = {1, 2, 4, 8, 16};
  if (bench::SmokeMode() && farm_sizes.size() > 2) farm_sizes.resize(2);

  struct Row {
    bool ok = false;
    std::int64_t direct_total = 0;
    std::int64_t direct_per_disk = 0;
    std::int64_t buffered_total = 0;
    std::int64_t buffered_per_disk = 0;
    std::int64_t mems_devices = 0;
  };
  exp::SweepRunner runner;
  const auto rows = runner.Map(
      static_cast<std::int64_t>(farm_sizes.size()),
      [&farm_sizes, &latency](exp::TaskContext& ctx) {
        const std::int64_t disks =
            farm_sizes[static_cast<std::size_t>(ctx.index())];
        ctx.AddEvents(2);  // direct + buffered plans
        Row row;
        model::ScaleOutConfig config;
        config.num_disks = disks;
        config.disk_latency = latency;
        config.bit_rate = 100 * kKBps;
        config.dram_budget = 10 * kGB;
        auto direct = model::PlanScaleOut(config);
        config.buffer_k_per_disk = 2;
        config.mems = bench::MemsProfileAtRatio(5.0);
        auto buffered = model::PlanScaleOut(config);
        if (!direct.ok() || !buffered.ok()) return row;
        row.ok = true;
        row.direct_total = direct.value().total_streams;
        row.direct_per_disk = direct.value().streams_per_disk;
        row.buffered_total = buffered.value().total_streams;
        row.buffered_per_disk = buffered.value().streams_per_disk;
        row.mems_devices = buffered.value().mems_devices_total;
        return row;
      });
  for (std::size_t i = 0; i < farm_sizes.size(); ++i) {
    const Row& row = rows[i];
    if (!row.ok) continue;
    const double gain = static_cast<double>(row.buffered_total) /
                        static_cast<double>(row.direct_total);
    table.AddRow({TablePrinter::Cell(farm_sizes[i]),
                  TablePrinter::Cell(row.direct_total),
                  TablePrinter::Cell(row.direct_per_disk),
                  TablePrinter::Cell(row.buffered_total),
                  TablePrinter::Cell(row.buffered_per_disk),
                  TablePrinter::Cell(gain, 2) + "x",
                  TablePrinter::Cell(row.mems_devices)});
    csv.AddRow(std::vector<double>{
        static_cast<double>(farm_sizes[i]),
        static_cast<double>(row.direct_total),
        static_cast<double>(row.buffered_total), gain});
  }
  table.Print(std::cout);

  // Execute a sampled plan to confirm it holds up in simulation. The
  // plan's stream count is offered to the sharded executor (one shard
  // per planned disk, the plan's DRAM budget split evenly) so the same
  // admission math gets re-checked by the farm router per shard.
  {
    struct SimOutcome {
      bool ok = false;
      std::int64_t offered = 0;
      std::int64_t admitted = 0;
      std::int64_t underflows = 0;
      std::int64_t overruns = 0;
      std::int64_t violations = 0;
      int mean_disk_util_percent = 0;
    };
    const Seconds duration = bench::SmokeDuration(20, 2);
    const auto sims = runner.Map(
        1, [&latency, duration](exp::TaskContext& ctx) {
          SimOutcome out;
          model::ScaleOutConfig config;
          config.num_disks = 3;
          config.disk_latency = latency;
          config.bit_rate = 1 * kMBps;
          config.dram_budget = 1 * kGB;
          auto plan = model::PlanScaleOut(config);
          if (!plan.ok()) return out;
          device::DiskParameters uniform = device::FutureDisk2007();
          uniform.inner_rate = uniform.outer_rate;
          farm::ShardedFarmConfig sharded;
          sharded.num_shards = 3;
          sharded.num_titles = plan.value().total_streams;
          // The analytic plan assumes evenly spread load; offer a
          // uniform (exponent-0) workload so the only rejections are
          // hash-placement skew, not Zipf hot spots (those are the
          // ablation_millionfarm study).
          sharded.zipf_exponent = 0.0;
          sharded.offered_streams = plan.value().total_streams;
          sharded.bit_rate = 1 * kMBps;
          sharded.node_disk = uniform;
          sharded.dram_budget_per_shard = 1 * kGB / 3.0;
          sharded.duration = duration;
          sharded.seed = 42;
          sharded.threads = 1;  // already inside a sweep task
          auto report = farm::RunShardedFarm(sharded);
          if (!report.ok()) return out;
          ctx.AddEvents(report.value().ios_completed);
          out.ok = true;
          out.offered = report.value().offered;
          out.admitted = report.value().admitted;
          out.underflows = report.value().underflow_events;
          out.overruns = report.value().cycle_overruns;
          out.violations = report.value().qos_violations;
          out.mean_disk_util_percent = static_cast<int>(
              100 * report.value().mean_utilization);
          return out;
        });
    if (sims[0].ok) {
      std::cout << "\nSimulated 3-shard plan via the sharded executor ("
                << sims[0].admitted << "/" << sims[0].offered
                << " DVD streams admitted): " << sims[0].underflows
                << " underflows, " << sims[0].overruns << " overruns, "
                << sims[0].violations
                << " QoS violations, mean disk utilization "
                << sims[0].mean_disk_util_percent << "%\n";
    }
  }

  std::cout << "\nReading: DRAM-bound farms gain the most from MEMS "
               "buffering; once every disk reaches its bandwidth bound "
               "the farm scales linearly and extra buffering stops "
               "helping.\n";
  std::cout << "CSV: " << bench::CsvPath("ablation_scaleout") << "\n";
  bench::RecordSweep("ablation_scaleout", runner);
  return 0;
}
