// Scale-out extension bench: a farm of FutureDisks under one shared DRAM
// budget, with and without per-disk MEMS buffer banks — where does the
// farm's bottleneck move, and how much farm the MEMS buffer saves. The
// plans are cross-validated by executing a sampled configuration.

#include <iostream>

#include "bench_common.h"
#include "common/table_printer.h"
#include "model/scale_out.h"
#include "model/timecycle.h"
#include "server/farm.h"

int main() {
  using namespace memstream;

  auto disk = bench::AnalyticFutureDisk();
  const auto latency = model::DiskLatencyFn(disk);

  std::cout << "Scale-out ablation: disk farm under a shared 10 GB DRAM "
               "budget (DivX 100 KB/s streams)\n\n";
  TablePrinter table({"Disks", "Streams (direct)", "per-disk",
                      "Streams (k=2 buffers)", "per-disk", "Gain",
                      "MEMS devices"});
  CsvWriter csv(bench::CsvPath("ablation_scaleout"),
                {"disks", "direct_total", "buffered_total", "gain"});

  for (std::int64_t disks : {1, 2, 4, 8, 16}) {
    model::ScaleOutConfig config;
    config.num_disks = disks;
    config.disk_latency = latency;
    config.bit_rate = 100 * kKBps;
    config.dram_budget = 10 * kGB;
    auto direct = model::PlanScaleOut(config);
    config.buffer_k_per_disk = 2;
    config.mems = bench::MemsProfileAtRatio(5.0);
    auto buffered = model::PlanScaleOut(config);
    if (!direct.ok() || !buffered.ok()) continue;
    const double gain =
        static_cast<double>(buffered.value().total_streams) /
        static_cast<double>(direct.value().total_streams);
    table.AddRow({TablePrinter::Cell(disks),
                  TablePrinter::Cell(direct.value().total_streams),
                  TablePrinter::Cell(direct.value().streams_per_disk),
                  TablePrinter::Cell(buffered.value().total_streams),
                  TablePrinter::Cell(buffered.value().streams_per_disk),
                  TablePrinter::Cell(gain, 2) + "x",
                  TablePrinter::Cell(buffered.value().mems_devices_total)});
    csv.AddRow(std::vector<double>{
        static_cast<double>(disks),
        static_cast<double>(direct.value().total_streams),
        static_cast<double>(buffered.value().total_streams), gain});
  }
  table.Print(std::cout);

  // Execute a sampled plan to confirm it holds up in simulation.
  {
    model::ScaleOutConfig config;
    config.num_disks = 3;
    config.disk_latency = latency;
    config.bit_rate = 1 * kMBps;
    config.dram_budget = 1 * kGB;
    auto plan = model::PlanScaleOut(config);
    if (plan.ok()) {
      device::DiskParameters uniform = device::FutureDisk2007();
      uniform.inner_rate = uniform.outer_rate;
      auto probe = device::DiskDrive::Create(uniform).value();
      auto cycle = model::IoCycleLength(
          plan.value().streams_per_disk, 1 * kMBps,
          model::DiskProfile(probe, plan.value().streams_per_disk));
      server::FarmConfig farm;
      farm.num_disks = 3;
      farm.disk = uniform;
      farm.streams_per_disk = plan.value().streams_per_disk;
      farm.bit_rate = 1 * kMBps;
      farm.cycle = cycle.value();
      farm.duration = 20;
      auto report = server::RunFarm(farm);
      if (report.ok()) {
        std::cout << "\nSimulated 3-disk plan ("
                  << plan.value().total_streams << " DVD streams): "
                  << report.value().underflow_events << " underflows, "
                  << report.value().cycle_overruns << " overruns, mean "
                  << "disk utilization "
                  << static_cast<int>(
                         100 * report.value().mean_disk_utilization)
                  << "%\n";
      }
    }
  }

  std::cout << "\nReading: DRAM-bound farms gain the most from MEMS "
               "buffering; once every disk reaches its bandwidth bound "
               "the farm scales linearly and extra buffering stops "
               "helping.\n";
  std::cout << "CSV: " << bench::CsvPath("ablation_scaleout") << "\n";
  return 0;
}
