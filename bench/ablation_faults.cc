// Fault-tolerance ablation: replicated vs striped MEMS cache banks under
// a rising device-failure rate, with the degradation manager re-planning
// online (Theorem 2 / Eqs. 5-8 re-solved at each fault). Replication
// sustains every cached stream at k' = k-1 (Theorem 4); striping loses
// the cache content with the first device (Corollary 3) and survives
// only through disk fallback plus shedding — the availability gap this
// table quantifies.
//
// Each (policy, failure rate, trial) triple is one parallel sweep task
// with a deterministic per-trial fault plan seed, so the table is
// byte-stable at any thread count.

#include <cmath>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_common.h"
#include "common/table_printer.h"
#include "fault/fault_plan.h"
#include "server/media_server.h"

int main() {
  using namespace memstream;

  std::vector<double> fail_rates = {0.0, 0.01, 0.03, 0.06};
  std::int64_t trials = 4;
  const Seconds duration = bench::SmokeDuration(30, 8);
  if (bench::SmokeMode()) {
    fail_rates = {0.0, 0.06};
    trials = 2;
  }

  constexpr std::int64_t kStreams = 30;
  constexpr BytesPerSecond kRate = 8 * kMBps;

  std::cout << "Fault ablation: " << kStreams << " streams at "
            << kRate / kMBps << " MB/s, k=2 MEMS cache, "
            << "device failures at rising rates (repair after 4 s)\n\n";

  struct Outcome {
    bool ok = false;
    double availability = 0;  ///< delivered stream-seconds fraction
    double shed_time = 0;
    std::int64_t sheds = 0;
    std::int64_t replans = 0;
    std::int64_t underflows = 0;
    std::int64_t violations = 0;
  };

  const auto policies = {model::CachePolicy::kReplicated,
                         model::CachePolicy::kStriped};
  const std::int64_t rates_n = static_cast<std::int64_t>(fail_rates.size());
  const std::int64_t tasks = 2 * rates_n * trials;

  exp::SweepRunner runner;
  const auto outcomes = runner.Map(
      tasks, [&fail_rates, trials, rates_n, duration](exp::TaskContext& ctx) {
        Outcome out;
        const std::int64_t trial = ctx.index() % trials;
        const std::int64_t rate_i = (ctx.index() / trials) % rates_n;
        const bool striped = ctx.index() >= rates_n * trials;

        fault::FaultPlanConfig pc;
        pc.horizon = duration;
        pc.num_devices = 2;
        pc.device_fail_rate = fail_rates[static_cast<std::size_t>(rate_i)];
        pc.repair_after = 4;
        auto plan = fault::FaultPlan::Generate(
            pc, 7000 + static_cast<std::uint64_t>(rate_i * 100 + trial));
        if (!plan.ok()) return out;

        server::MediaServerConfig config;
        config.mode = server::ServerMode::kMemsCache;
        config.cache_policy = striped ? model::CachePolicy::kStriped
                                      : model::CachePolicy::kReplicated;
        config.k = 2;
        config.num_streams = kStreams;
        config.cached_fraction_of_streams = 0.5;
        config.bit_rate = kRate;
        config.sim_duration = duration;
        config.fault_plan = std::move(plan).value();
        config.fault_refill_delay = 1.0;
        std::ostringstream sink;  // burst warnings belong in the report
        config.fault_warn_stream = &sink;
        auto result = server::RunMediaServer(config);
        if (!result.ok()) return out;
        ctx.AddEvents(result.value().ios_completed);

        const auto& r = result.value();
        out.ok = true;
        if (r.faults != nullptr) {
          const obs::FaultsBlock& block = r.faults->block();
          out.shed_time = block.total_shed_time;
          out.sheds = block.sheds;
          out.replans = block.replans;
        }
        const double stream_seconds =
            static_cast<double>(kStreams) * duration;
        out.availability =
            1.0 - (out.shed_time + r.qos.underflow_time) / stream_seconds;
        out.underflows = r.qos.underflow_events;
        out.violations = r.qos.violations;
        return out;
      });

  TablePrinter table({"Policy", "Fail rate (/dev/s)", "Availability",
                      "Shed time (s)", "Sheds", "Replans", "Underflows",
                      "QoS violations"});
  CsvWriter csv(bench::CsvPath("ablation_faults"),
                {"striped", "fail_rate", "availability", "shed_time",
                 "sheds", "replans", "underflows", "violations"});

  std::int64_t idx = 0;
  for (const auto policy : policies) {
    const bool striped = policy == model::CachePolicy::kStriped;
    for (std::int64_t rate_i = 0; rate_i < rates_n; ++rate_i) {
      double avail = 0, shed_time = 0;
      std::int64_t sheds = 0, replans = 0, underflows = 0, violations = 0;
      std::int64_t ok_trials = 0;
      for (std::int64_t t = 0; t < trials; ++t, ++idx) {
        const Outcome& o = outcomes[static_cast<std::size_t>(idx)];
        if (!o.ok) continue;
        ++ok_trials;
        avail += o.availability;
        shed_time += o.shed_time;
        sheds += o.sheds;
        replans += o.replans;
        underflows += o.underflows;
        violations += o.violations;
      }
      if (ok_trials == 0) continue;
      avail /= static_cast<double>(ok_trials);
      shed_time /= static_cast<double>(ok_trials);
      table.AddRow({striped ? "striped" : "replicated",
                    TablePrinter::Cell(fail_rates[static_cast<std::size_t>(
                                           rate_i)],
                                       2),
                    TablePrinter::Cell(avail, 4),
                    TablePrinter::Cell(shed_time, 2),
                    TablePrinter::Cell(sheds), TablePrinter::Cell(replans),
                    TablePrinter::Cell(underflows),
                    TablePrinter::Cell(violations)});
      csv.AddRow(std::vector<double>{
          striped ? 1.0 : 0.0, fail_rates[static_cast<std::size_t>(rate_i)],
          avail, shed_time, static_cast<double>(sheds),
          static_cast<double>(replans), static_cast<double>(underflows),
          static_cast<double>(violations)});
    }
  }
  table.Print(std::cout);

  std::cout << "\nReading: a replicated bank rides out single-device "
               "loss by reshaping its cycle (availability stays ~1.0); a "
               "striped bank must shed whatever the disk path cannot "
               "absorb, so its availability falls with the failure rate. "
               "Retained streams stay violation-free in both.\n";
  std::cout << "CSV: " << bench::CsvPath("ablation_faults") << "\n";
  bench::RecordSweep("ablation_faults", runner);
  return 0;
}
