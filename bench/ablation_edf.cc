// Scheduler ablation: time-cycle + elevator (the paper's choice, QPMS
// lineage) vs Earliest-Deadline-First (the competing class cited in §6).
// At equal per-stream buffering, sweep the stream count and report where
// each scheduler starts missing deadlines — the classical result that
// cycle-based batching dominates for homogeneous continuous media.

#include <iostream>

#include "bench_common.h"
#include "common/table_printer.h"
#include "model/profiles.h"
#include "model/timecycle.h"
#include "server/edf_server.h"
#include "server/timecycle_server.h"

namespace {

using namespace memstream;

device::DiskParameters UniformDisk() {
  device::DiskParameters p = device::FutureDisk2007();
  p.inner_rate = p.outer_rate;
  return p;
}

std::vector<server::StreamSpec> Spread(std::int64_t n,
                                       BytesPerSecond bit_rate,
                                       Bytes capacity, Bytes min_extent) {
  std::vector<server::StreamSpec> streams;
  const Bytes stride = capacity * 0.9 / static_cast<double>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    streams.push_back({i, bit_rate, stride * static_cast<double>(i),
                       std::max(min_extent, stride)});
  }
  return streams;
}

}  // namespace

int main() {
  std::cout << "Scheduler ablation: time-cycle/elevator vs EDF\n"
            << "  (DVD 1 MB/s streams, equal per-stream buffering: 2 IOs "
               "of one cycle's playback)\n\n";

  TablePrinter table({"N", "Cycle [ms]", "TC underflows", "TC busy/IO [ms]",
                      "EDF underflows", "EDF busy/IO [ms]",
                      "EDF seek overhead"});
  CsvWriter csv(bench::CsvPath("ablation_edf"),
                {"n", "cycle_ms", "tc_underflows", "tc_busy_per_io_ms",
                 "edf_underflows", "edf_busy_per_io_ms"});

  const BytesPerSecond b = 1 * kMBps;
  for (std::int64_t n : {25, 50, 100, 150, 200, 250}) {
    auto disk_tc = device::DiskDrive::Create(UniformDisk()).value();
    auto cycle =
        model::IoCycleLength(n, b, model::DiskProfile(disk_tc, n));
    if (!cycle.ok()) continue;

    server::DirectServerConfig tc_config;
    tc_config.cycle = cycle.value();
    auto tc = server::DirectStreamingServer::Create(
        &disk_tc,
        Spread(n, b, disk_tc.Capacity(), 3 * b * cycle.value()),
        tc_config);
    if (!tc.ok() || !tc.value().Run(30.0).ok()) continue;

    auto disk_edf = device::DiskDrive::Create(UniformDisk()).value();
    server::EdfServerConfig edf_config;
    edf_config.io_playback = cycle.value();
    auto edf = server::EdfStreamingServer::Create(
        &disk_edf,
        Spread(n, b, disk_edf.Capacity(), 3 * b * cycle.value()),
        edf_config);
    if (!edf.ok() || !edf.value().Run(30.0).ok()) continue;

    const auto& tcr = tc.value().report();
    const auto& edfr = edf.value().report();
    const double tc_per_io =
        tcr.ios_completed
            ? ToMs(tcr.total_busy / static_cast<double>(tcr.ios_completed))
            : 0;
    const double edf_per_io =
        edfr.ios_completed
            ? ToMs(edfr.total_busy /
                   static_cast<double>(edfr.ios_completed))
            : 0;
    table.AddRow({TablePrinter::Cell(n),
                  TablePrinter::Cell(ToMs(cycle.value()), 1),
                  TablePrinter::Cell(tcr.underflow_events),
                  TablePrinter::Cell(tc_per_io, 2),
                  TablePrinter::Cell(edfr.underflow_events),
                  TablePrinter::Cell(edf_per_io, 2),
                  TablePrinter::Cell(edf_per_io / tc_per_io, 2) + "x"});
    csv.AddRow(std::vector<double>{
        static_cast<double>(n), ToMs(cycle.value()),
        static_cast<double>(tcr.underflow_events), tc_per_io,
        static_cast<double>(edfr.underflow_events), edf_per_io});
  }
  table.Print(std::cout);

  // How much extra buffering does EDF need to become jitter-free?
  std::cout << "\nBuffer inflation for jitter-free EDF (N = 100):\n";
  TablePrinter inflation({"buffer scale f", "EDF underflows"});
  {
    auto disk_probe = device::DiskDrive::Create(UniformDisk()).value();
    auto cycle =
        model::IoCycleLength(100, b, model::DiskProfile(disk_probe, 100));
    for (double f : {1.0, 1.2, 1.5, 2.0, 3.0, 4.0}) {
      auto disk = device::DiskDrive::Create(UniformDisk()).value();
      server::EdfServerConfig config;
      config.io_playback = cycle.value() * f;
      auto edf = server::EdfStreamingServer::Create(
          &disk,
          Spread(100, b, disk.Capacity(), 3 * b * config.io_playback),
          config);
      if (!edf.ok() || !edf.value().Run(30.0).ok()) continue;
      inflation.AddRow(
          {TablePrinter::Cell(f, 1),
           TablePrinter::Cell(edf.value().report().underflow_events)});
    }
  }
  inflation.Print(std::cout);

  std::cout << "\nReading: the time-cycle server stays jitter-free at "
               "every load (its sizing is exactly Theorem 1, which has "
               "no slack to waste); EDF pays deadline-ordered "
               "(near-random) seeks — ~1.3x more disk time per IO — so "
               "at equal buffering it underflows at every load and needs "
               "severalfold larger IOs/buffers to amortize its seeks.\n";
  std::cout << "CSV: " << bench::CsvPath("ablation_edf") << "\n";
  return 0;
}
