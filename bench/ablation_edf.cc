// Scheduler ablation: time-cycle + elevator (the paper's choice, QPMS
// lineage) vs Earliest-Deadline-First (the competing class cited in §6).
// At equal per-stream buffering, sweep the stream count and report where
// each scheduler starts missing deadlines — the classical result that
// cycle-based batching dominates for homogeneous continuous media.
//
// Each load point (one TC run plus one EDF run) and each inflation
// point is a parallel sweep task; both drives are task-local.

#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/table_printer.h"
#include "model/profiles.h"
#include "model/timecycle.h"
#include "server/edf_server.h"
#include "server/timecycle_server.h"

namespace {

using namespace memstream;

device::DiskParameters UniformDisk() {
  device::DiskParameters p = device::FutureDisk2007();
  p.inner_rate = p.outer_rate;
  return p;
}

std::vector<server::StreamSpec> Spread(std::int64_t n,
                                       BytesPerSecond bit_rate,
                                       Bytes capacity, Bytes min_extent) {
  std::vector<server::StreamSpec> streams;
  const Bytes stride = capacity * 0.9 / static_cast<double>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    streams.push_back({i, bit_rate, stride * static_cast<double>(i),
                       std::max(min_extent, stride)});
  }
  return streams;
}

}  // namespace

int main() {
  std::cout << "Scheduler ablation: time-cycle/elevator vs EDF\n"
            << "  (DVD 1 MB/s streams, equal per-stream buffering: 2 IOs "
               "of one cycle's playback)\n\n";

  TablePrinter table({"N", "Cycle [ms]", "TC underflows", "TC busy/IO [ms]",
                      "EDF underflows", "EDF busy/IO [ms]",
                      "EDF seek overhead"});
  CsvWriter csv(bench::CsvPath("ablation_edf"),
                {"n", "cycle_ms", "tc_underflows", "tc_busy_per_io_ms",
                 "edf_underflows", "edf_busy_per_io_ms"});

  const BytesPerSecond b = 1 * kMBps;
  const Seconds sim_time = bench::SmokeDuration(30.0, 2.0);
  std::vector<std::int64_t> loads = {25, 50, 100, 150, 200, 250};
  if (bench::SmokeMode() && loads.size() > 2) loads.resize(2);

  struct LoadRow {
    bool ok = false;
    Seconds cycle = 0;
    std::int64_t tc_underflows = 0;
    double tc_per_io = 0;
    std::int64_t edf_underflows = 0;
    double edf_per_io = 0;
  };
  exp::SweepRunner runner;
  const auto rows = runner.Map(
      static_cast<std::int64_t>(loads.size()),
      [&loads, b, sim_time](exp::TaskContext& ctx) {
        const std::int64_t n =
            loads[static_cast<std::size_t>(ctx.index())];
        LoadRow row;
        auto disk_tc = device::DiskDrive::Create(UniformDisk()).value();
        auto cycle =
            model::IoCycleLength(n, b, model::DiskProfile(disk_tc, n));
        if (!cycle.ok()) return row;

        server::DirectServerConfig tc_config;
        tc_config.cycle = cycle.value();
        auto tc = server::DirectStreamingServer::Create(
            &disk_tc,
            Spread(n, b, disk_tc.Capacity(), 3 * b * cycle.value()),
            tc_config);
        if (!tc.ok() || !tc.value().Run(sim_time).ok()) return row;

        auto disk_edf = device::DiskDrive::Create(UniformDisk()).value();
        server::EdfServerConfig edf_config;
        edf_config.io_playback = cycle.value();
        auto edf = server::EdfStreamingServer::Create(
            &disk_edf,
            Spread(n, b, disk_edf.Capacity(), 3 * b * cycle.value()),
            edf_config);
        if (!edf.ok() || !edf.value().Run(sim_time).ok()) return row;

        const auto& tcr = tc.value().report();
        const auto& edfr = edf.value().report();
        ctx.AddEvents(tcr.ios_completed + edfr.ios_completed);
        row.ok = true;
        row.cycle = cycle.value();
        row.tc_underflows = tcr.qos.underflow_events;
        row.tc_per_io =
            tcr.ios_completed
                ? ToMs(tcr.total_busy /
                       static_cast<double>(tcr.ios_completed))
                : 0;
        row.edf_underflows = edfr.qos.underflow_events;
        row.edf_per_io =
            edfr.ios_completed
                ? ToMs(edfr.total_busy /
                       static_cast<double>(edfr.ios_completed))
                : 0;
        return row;
      });
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const LoadRow& row = rows[i];
    if (!row.ok) continue;
    table.AddRow({TablePrinter::Cell(loads[i]),
                  TablePrinter::Cell(ToMs(row.cycle), 1),
                  TablePrinter::Cell(row.tc_underflows),
                  TablePrinter::Cell(row.tc_per_io, 2),
                  TablePrinter::Cell(row.edf_underflows),
                  TablePrinter::Cell(row.edf_per_io, 2),
                  TablePrinter::Cell(row.edf_per_io / row.tc_per_io, 2) +
                      "x"});
    csv.AddRow(std::vector<double>{
        static_cast<double>(loads[i]), ToMs(row.cycle),
        static_cast<double>(row.tc_underflows), row.tc_per_io,
        static_cast<double>(row.edf_underflows), row.edf_per_io});
  }
  table.Print(std::cout);

  // How much extra buffering does EDF need to become jitter-free?
  std::cout << "\nBuffer inflation for jitter-free EDF (N = 100):\n";
  TablePrinter inflation({"buffer scale f", "EDF underflows"});
  {
    auto disk_probe = device::DiskDrive::Create(UniformDisk()).value();
    auto cycle =
        model::IoCycleLength(100, b, model::DiskProfile(disk_probe, 100));
    std::vector<double> factors = {1.0, 1.2, 1.5, 2.0, 3.0, 4.0};
    if (bench::SmokeMode() && factors.size() > 2) factors.resize(2);

    struct InflationRow {
      bool ok = false;
      std::int64_t underflows = 0;
    };
    const auto inflation_rows = runner.Map(
        static_cast<std::int64_t>(factors.size()),
        [&factors, &cycle, b, sim_time](exp::TaskContext& ctx) {
          const double f =
              factors[static_cast<std::size_t>(ctx.index())];
          InflationRow row;
          auto disk = device::DiskDrive::Create(UniformDisk()).value();
          server::EdfServerConfig config;
          config.io_playback = cycle.value() * f;
          auto edf = server::EdfStreamingServer::Create(
              &disk,
              Spread(100, b, disk.Capacity(), 3 * b * config.io_playback),
              config);
          if (!edf.ok() || !edf.value().Run(sim_time).ok()) return row;
          ctx.AddEvents(edf.value().report().ios_completed);
          row.ok = true;
          row.underflows = edf.value().report().qos.underflow_events;
          return row;
        });
    for (std::size_t i = 0; i < factors.size(); ++i) {
      if (!inflation_rows[i].ok) continue;
      inflation.AddRow(
          {TablePrinter::Cell(factors[i], 1),
           TablePrinter::Cell(inflation_rows[i].underflows)});
    }
  }
  inflation.Print(std::cout);

  std::cout << "\nReading: the time-cycle server stays jitter-free at "
               "every load (its sizing is exactly Theorem 1, which has "
               "no slack to waste); EDF pays deadline-ordered "
               "(near-random) seeks — ~1.3x more disk time per IO — so "
               "at equal buffering it underflows at every load and needs "
               "severalfold larger IOs/buffers to amortize its seeks.\n";
  std::cout << "CSV: " << bench::CsvPath("ablation_edf") << "\n";
  bench::RecordSweep("ablation_edf", runner);
  return 0;
}
