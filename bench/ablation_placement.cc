// Ablation bench for the §3.1.2 placement decision: buffer the streams
// round-robin (each disk IO whole on one device — what Theorem 2
// assumes) vs striping every disk IO across the bank. The paper argues
// qualitatively that striping "can be undesirable" because it shrinks
// the per-device IO size; this bench quantifies the penalty across bank
// sizes and bit-rates.

#include <iostream>

#include "bench_common.h"
#include "common/table_printer.h"
#include "model/mems_buffer.h"
#include "model/stream.h"
#include "server/mems_pipeline_server.h"

int main() {
  using namespace memstream;

  auto disk = bench::AnalyticFutureDisk();
  const auto latency = model::DiskLatencyFn(disk);

  std::cout << "Placement ablation: round-robin streams vs striped IOs\n"
            << "  (N = 200 streams, T_disk = 60 s, G3 devices)\n\n";
  TablePrinter table({"Media", "k", "DRAM round-robin [MB]",
                      "DRAM striped [MB]", "Striping penalty"});
  CsvWriter csv(bench::CsvPath("ablation_placement"),
                {"media", "k", "dram_rr_mb", "dram_striped_mb"});

  const std::int64_t n = 200;
  const Seconds t_disk = 60.0;
  for (const auto& media : model::PaperStreamClasses()) {
    if (media.bit_rate * n >= 300 * kMBps) continue;  // disk-infeasible
    for (std::int64_t k : {2, 4, 8}) {
      model::MemsBufferParams params;
      params.k = k;
      params.disk.rate = 300 * kMBps;
      params.disk.latency = latency(n);
      params.mems = bench::MemsProfileAtRatio(5.0);
      auto rr = model::SolveMemsBuffer(n, media.bit_rate, params, t_disk);
      params.placement = model::BufferPlacement::kStripedIos;
      auto striped =
          model::SolveMemsBuffer(n, media.bit_rate, params, t_disk);
      if (!rr.ok() || !striped.ok()) {
        table.AddRow({media.name, TablePrinter::Cell(k), "-", "-", "-"});
        continue;
      }
      table.AddRow(
          {media.name, TablePrinter::Cell(k),
           TablePrinter::Cell(ToMB(rr.value().dram_total), 2),
           TablePrinter::Cell(ToMB(striped.value().dram_total), 2),
           TablePrinter::Cell(striped.value().dram_total /
                                  rr.value().dram_total,
                              1) +
               "x"});
      csv.AddRow(std::vector<std::string>{
          media.name, std::to_string(k),
          std::to_string(ToMB(rr.value().dram_total)),
          std::to_string(ToMB(striped.value().dram_total))});
    }
  }
  table.Print(std::cout);

  // Execute both placements (N = 40, k = 4) to confirm the analytic
  // penalty is what the running schedules actually pay.
  {
    device::DiskParameters uniform = device::FutureDisk2007();
    uniform.inner_rate = uniform.outer_rate;
    std::cout << "\nSimulated cross-check (N=40 DVD, k=4):\n";
    for (auto placement : {model::BufferPlacement::kRoundRobinStreams,
                           model::BufferPlacement::kStripedIos}) {
      auto disk = device::DiskDrive::Create(uniform).value();
      model::MemsBufferParams params;
      params.k = 4;
      params.disk = model::DiskProfile(disk, 40);
      params.mems = bench::MemsProfileAtRatio(5.0);
      params.mems.capacity = 10 * kGB;
      params.placement = placement;
      auto range = model::FeasibleTdiskRange(40, 1 * kMBps, params);
      if (!range.ok()) continue;
      auto sizing = model::SolveMemsBuffer(
          40, 1 * kMBps, params,
          std::min(range.value().lower * 1.5, range.value().upper));
      if (!sizing.ok()) continue;

      server::MemsPipelineConfig config;
      config.t_disk = sizing.value().t_disk;
      config.t_mems = sizing.value().t_mems_snapped;
      config.placement = placement;
      std::vector<device::MemsDevice> bank;
      for (int i = 0; i < 4; ++i) {
        bank.push_back(device::MemsDevice::Create(device::MemsG3()).value());
      }
      std::vector<server::StreamSpec> streams;
      const Bytes stride = disk.Capacity() * 0.9 / 40;
      for (std::int64_t i = 0; i < 40; ++i) {
        streams.push_back({i, 1 * kMBps, stride * static_cast<double>(i),
                           std::max(stride, 2 * kMB * config.t_disk)});
      }
      auto server = server::MemsPipelineServer::Create(
          &disk, std::move(bank), streams, config);
      if (!server.ok() || !server.value().Run(30.0).ok()) continue;
      const auto& r = server.value().report();
      std::printf(
          "  %-12s T_mems %6.1f ms, DRAM/stream %7.1f kB: underflows "
          "%lld, MEMS overruns %lld, sim peak DRAM %.2f MB\n",
          model::BufferPlacementName(placement),
          ToMs(config.t_mems),
          sizing.value().s_mems_dram_schedulable / kKB,
          static_cast<long long>(r.underflow_events),
          static_cast<long long>(r.mems_overruns),
          ToMB(r.peak_dram_demand));
    }
  }

  std::cout << "\nReading: the striping penalty tracks the bank size "
               "(every device pays every IO's positioning cost), "
               "vindicating the paper's round-robin routing — and both "
               "placements execute jitter-free at their own sizing, so "
               "the penalty is pure DRAM cost, not feasibility.\n";
  std::cout << "CSV: " << bench::CsvPath("ablation_placement") << "\n";
  return 0;
}
