// Ablation bench for the §3.1.2 placement decision: buffer the streams
// round-robin (each disk IO whole on one device — what Theorem 2
// assumes) vs striping every disk IO across the bank. The paper argues
// qualitatively that striping "can be undesirable" because it shrinks
// the per-device IO size; this bench quantifies the penalty across bank
// sizes and bit-rates.
//
// The analytic (media, k) grid and the two simulated cross-check runs
// execute as parallel sweep tasks.

#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/table_printer.h"
#include "model/mems_buffer.h"
#include "model/stream.h"
#include "server/mems_pipeline_server.h"

int main() {
  using namespace memstream;

  auto disk = bench::AnalyticFutureDisk();
  const auto latency = model::DiskLatencyFn(disk);

  std::cout << "Placement ablation: round-robin streams vs striped IOs\n"
            << "  (N = 200 streams, T_disk = 60 s, G3 devices)\n\n";
  TablePrinter table({"Media", "k", "DRAM round-robin [MB]",
                      "DRAM striped [MB]", "Striping penalty"});
  CsvWriter csv(bench::CsvPath("ablation_placement"),
                {"media", "k", "dram_rr_mb", "dram_striped_mb"});

  const std::int64_t n = 200;
  const Seconds t_disk = 60.0;
  const std::vector<std::int64_t> bank_sizes = {2, 4, 8};

  struct Point {
    model::StreamClass media;
    std::int64_t k = 0;
  };
  std::vector<Point> points;
  for (const auto& media : model::PaperStreamClasses()) {
    if (media.bit_rate * n >= 300 * kMBps) continue;  // disk-infeasible
    for (std::int64_t k : bank_sizes) points.push_back({media, k});
  }
  if (bench::SmokeMode() && points.size() > 3) points.resize(3);

  struct Row {
    bool ok = false;
    Bytes dram_rr = 0;
    Bytes dram_striped = 0;
  };
  exp::SweepRunner runner;
  const auto rows = runner.Map(
      static_cast<std::int64_t>(points.size()),
      [&points, &latency, n, t_disk](exp::TaskContext& ctx) {
        const Point& p = points[static_cast<std::size_t>(ctx.index())];
        ctx.AddEvents(2);  // round-robin + striped solves
        Row row;
        model::MemsBufferParams params;
        params.k = p.k;
        params.disk.rate = 300 * kMBps;
        params.disk.latency = latency(n);
        params.mems = bench::MemsProfileAtRatio(5.0);
        auto rr =
            model::SolveMemsBuffer(n, p.media.bit_rate, params, t_disk);
        params.placement = model::BufferPlacement::kStripedIos;
        auto striped =
            model::SolveMemsBuffer(n, p.media.bit_rate, params, t_disk);
        if (!rr.ok() || !striped.ok()) return row;
        row.ok = true;
        row.dram_rr = rr.value().dram_total;
        row.dram_striped = striped.value().dram_total;
        return row;
      });
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    const Row& row = rows[i];
    if (!row.ok) {
      table.AddRow({p.media.name, TablePrinter::Cell(p.k), "-", "-", "-"});
      continue;
    }
    table.AddRow({p.media.name, TablePrinter::Cell(p.k),
                  TablePrinter::Cell(ToMB(row.dram_rr), 2),
                  TablePrinter::Cell(ToMB(row.dram_striped), 2),
                  TablePrinter::Cell(row.dram_striped / row.dram_rr, 1) +
                      "x"});
    csv.AddRow(std::vector<std::string>{
        p.media.name, std::to_string(p.k),
        std::to_string(ToMB(row.dram_rr)),
        std::to_string(ToMB(row.dram_striped))});
  }
  table.Print(std::cout);

  // Execute both placements (N = 40, k = 4) to confirm the analytic
  // penalty is what the running schedules actually pay.
  {
    device::DiskParameters uniform = device::FutureDisk2007();
    uniform.inner_rate = uniform.outer_rate;
    std::cout << "\nSimulated cross-check (N=40 DVD, k=4):\n";
    const std::vector<model::BufferPlacement> placements = {
        model::BufferPlacement::kRoundRobinStreams,
        model::BufferPlacement::kStripedIos};
    const Seconds sim_time = bench::SmokeDuration(30.0, 3.0);

    struct SimRow {
      bool ok = false;
      Seconds t_mems = 0;
      double dram_per_stream_kb = 0;
      std::int64_t underflows = 0;
      std::int64_t overruns = 0;
      double peak_dram_mb = 0;
    };
    const auto sim_rows = runner.Map(
        static_cast<std::int64_t>(placements.size()),
        [&placements, &uniform, sim_time](exp::TaskContext& ctx) {
          const auto placement =
              placements[static_cast<std::size_t>(ctx.index())];
          SimRow row;
          auto fresh = device::DiskDrive::Create(uniform).value();
          model::MemsBufferParams params;
          params.k = 4;
          params.disk = model::DiskProfile(fresh, 40);
          params.mems = bench::MemsProfileAtRatio(5.0);
          params.mems.capacity = 10 * kGB;
          params.placement = placement;
          auto range = model::FeasibleTdiskRange(40, 1 * kMBps, params);
          if (!range.ok()) return row;
          auto sizing = model::SolveMemsBuffer(
              40, 1 * kMBps, params,
              std::min(range.value().lower * 1.5, range.value().upper));
          if (!sizing.ok()) return row;

          server::MemsPipelineConfig config;
          config.t_disk = sizing.value().t_disk;
          config.t_mems = sizing.value().t_mems_snapped;
          config.placement = placement;
          std::vector<device::MemsDevice> bank;
          for (int i = 0; i < 4; ++i) {
            bank.push_back(
                device::MemsDevice::Create(device::MemsG3()).value());
          }
          std::vector<server::StreamSpec> streams;
          const Bytes stride = fresh.Capacity() * 0.9 / 40;
          for (std::int64_t i = 0; i < 40; ++i) {
            streams.push_back({i, 1 * kMBps,
                               stride * static_cast<double>(i),
                               std::max(stride, 2 * kMB * config.t_disk)});
          }
          auto server = server::MemsPipelineServer::Create(
              &fresh, std::move(bank), streams, config);
          if (!server.ok() || !server.value().Run(sim_time).ok()) {
            return row;
          }
          const auto& r = server.value().report();
          ctx.AddEvents(r.ios_completed);
          row.ok = true;
          row.t_mems = config.t_mems;
          row.dram_per_stream_kb =
              sizing.value().s_mems_dram_schedulable / kKB;
          row.underflows = r.qos.underflow_events;
          row.overruns = r.mems_overruns;
          row.peak_dram_mb = ToMB(r.peak_dram_demand);
          return row;
        });
    for (std::size_t i = 0; i < placements.size(); ++i) {
      const SimRow& row = sim_rows[i];
      if (!row.ok) continue;
      std::printf(
          "  %-12s T_mems %6.1f ms, DRAM/stream %7.1f kB: underflows "
          "%lld, MEMS overruns %lld, sim peak DRAM %.2f MB\n",
          model::BufferPlacementName(placements[i]), ToMs(row.t_mems),
          row.dram_per_stream_kb, static_cast<long long>(row.underflows),
          static_cast<long long>(row.overruns), row.peak_dram_mb);
    }
  }

  std::cout << "\nReading: the striping penalty tracks the bank size "
               "(every device pays every IO's positioning cost), "
               "vindicating the paper's round-robin routing — and both "
               "placements execute jitter-free at their own sizing, so "
               "the penalty is pure DRAM cost, not feasibility.\n";
  std::cout << "CSV: " << bench::CsvPath("ablation_placement") << "\n";
  bench::RecordSweep("ablation_placement", runner);
  return 0;
}
