// Regenerates Fig. 10: improvement in server throughput (%) vs the size
// of the MEMS cache bank (k = 1..8), striped management, $100 total
// budget, 100 KB/s streams, each device caching 1% of the content, for
// the five popularity distributions.
//
// The (k, popularity) grid runs on the parallel sweep engine; the table
// is assembled serially afterwards.

#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/table_printer.h"
#include "model/planner.h"

int main() {
  using namespace memstream;

  auto disk = bench::AnalyticFutureDisk();
  const auto latency = model::DiskLatencyFn(disk);

  const model::Popularity distributions[] = {
      {0.01, 0.99}, {0.05, 0.95}, {0.10, 0.90}, {0.20, 0.80}, {0.50, 0.50}};

  std::cout << "Fig. 10: throughput improvement vs MEMS cache size\n"
            << "  (striped, $100 budget, 100 KB/s streams, 1% of content "
               "per device)\n\n";
  TablePrinter table({"k", "1:99", "5:95", "10:90", "20:80", "50:50"});
  CsvWriter csv(bench::CsvPath("fig10_cache_size_sweep"),
                {"k", "popularity_x", "improvement_percent", "streams",
                 "baseline"});

  model::CacheSystemConfig base;
  base.total_budget = 100;
  base.dram_per_byte = 20.0 / kGB;
  base.mems_device_cost = 10;
  base.policy = model::CachePolicy::kStriped;
  base.mems_capacity = 10 * kGB;
  base.content_size = 1000 * kGB;
  base.bit_rate = 100 * kKBps;
  base.disk_rate = 300 * kMBps;
  base.disk_latency = latency;
  base.mems = bench::MemsProfileAtRatio(5.0);

  const std::int64_t max_k = bench::SmokeMode() ? 2 : 8;
  const std::int64_t pop_count =
      static_cast<std::int64_t>(std::size(distributions));

  struct Cell {
    bool ok = false;
    std::int64_t streams = 0;
    std::int64_t baseline = 0;
    double improvement = 0;
  };
  exp::SweepRunner runner;
  const auto cells = runner.Map(
      max_k * pop_count,
      [&base, &distributions, pop_count](exp::TaskContext& ctx) {
        const std::int64_t k = 1 + ctx.index() / pop_count;
        const auto& pop =
            distributions[static_cast<std::size_t>(ctx.index() % pop_count)];
        ctx.AddEvents(2);  // baseline + cached planner solves
        Cell cell;
        model::CacheSystemConfig config = base;
        config.popularity = pop;
        config.k = 0;
        auto none = model::MaxCacheSystemThroughput(config);
        config.k = k;
        auto with_cache = model::MaxCacheSystemThroughput(config);
        if (!none.ok() || !with_cache.ok() ||
            none.value().total_streams == 0) {
          return cell;
        }
        cell.ok = true;
        cell.streams = with_cache.value().total_streams;
        cell.baseline = none.value().total_streams;
        cell.improvement = 100.0 * (static_cast<double>(cell.streams) /
                                        static_cast<double>(cell.baseline) -
                                    1.0);
        return cell;
      });

  double best_improvement = 0;
  for (std::int64_t k = 1; k <= max_k; ++k) {
    std::vector<std::string> row{TablePrinter::Cell(k)};
    for (std::int64_t p = 0; p < pop_count; ++p) {
      const auto& pop = distributions[static_cast<std::size_t>(p)];
      const Cell& cell =
          cells[static_cast<std::size_t>((k - 1) * pop_count + p)];
      if (!cell.ok) {
        row.push_back("-");
        continue;
      }
      best_improvement = std::max(best_improvement, cell.improvement);
      row.push_back(TablePrinter::Cell(cell.improvement, 1) + "%");
      csv.AddRow(std::vector<std::string>{
          std::to_string(k), std::to_string(pop.x),
          std::to_string(cell.improvement), std::to_string(cell.streams),
          std::to_string(cell.baseline)});
    }
    table.AddRow(row);
  }
  table.Print(std::cout);

  std::cout << "\nBest improvement over the sweep: " << best_improvement
            << "% (paper: up to ~140%, i.e. 2.4x)\n"
            << "Shape check (paper §5.2.4): each skewed distribution has "
               "an optimal k; the uniform 50:50 column only degrades as "
               "k grows.\n";
  std::cout << "CSV: " << bench::CsvPath("fig10_cache_size_sweep") << "\n";
  bench::RecordSweep("fig10_cache_size_sweep", runner);
  return 0;
}
