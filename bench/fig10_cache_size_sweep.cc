// Regenerates Fig. 10: improvement in server throughput (%) vs the size
// of the MEMS cache bank (k = 1..8), striped management, $100 total
// budget, 100 KB/s streams, each device caching 1% of the content, for
// the five popularity distributions.

#include <iostream>

#include "bench_common.h"
#include "common/table_printer.h"
#include "model/planner.h"

int main() {
  using namespace memstream;

  auto disk = bench::AnalyticFutureDisk();
  const auto latency = model::DiskLatencyFn(disk);

  const model::Popularity distributions[] = {
      {0.01, 0.99}, {0.05, 0.95}, {0.10, 0.90}, {0.20, 0.80}, {0.50, 0.50}};

  std::cout << "Fig. 10: throughput improvement vs MEMS cache size\n"
            << "  (striped, $100 budget, 100 KB/s streams, 1% of content "
               "per device)\n\n";
  TablePrinter table({"k", "1:99", "5:95", "10:90", "20:80", "50:50"});
  CsvWriter csv(bench::CsvPath("fig10_cache_size_sweep"),
                {"k", "popularity_x", "improvement_percent", "streams",
                 "baseline"});

  model::CacheSystemConfig base;
  base.total_budget = 100;
  base.dram_per_byte = 20.0 / kGB;
  base.mems_device_cost = 10;
  base.policy = model::CachePolicy::kStriped;
  base.mems_capacity = 10 * kGB;
  base.content_size = 1000 * kGB;
  base.bit_rate = 100 * kKBps;
  base.disk_rate = 300 * kMBps;
  base.disk_latency = latency;
  base.mems = bench::MemsProfileAtRatio(5.0);

  double best_improvement = 0;
  for (std::int64_t k = 1; k <= 8; ++k) {
    std::vector<std::string> row{TablePrinter::Cell(k)};
    for (const auto& pop : distributions) {
      model::CacheSystemConfig config = base;
      config.popularity = pop;
      config.k = 0;
      auto none = model::MaxCacheSystemThroughput(config);
      config.k = k;
      auto with_cache = model::MaxCacheSystemThroughput(config);
      if (!none.ok() || !with_cache.ok() ||
          none.value().total_streams == 0) {
        row.push_back("-");
        continue;
      }
      const double improvement =
          100.0 *
          (static_cast<double>(with_cache.value().total_streams) /
               static_cast<double>(none.value().total_streams) -
           1.0);
      best_improvement = std::max(best_improvement, improvement);
      row.push_back(TablePrinter::Cell(improvement, 1) + "%");
      csv.AddRow(std::vector<std::string>{
          std::to_string(k), std::to_string(pop.x),
          std::to_string(improvement),
          std::to_string(with_cache.value().total_streams),
          std::to_string(none.value().total_streams)});
    }
    table.AddRow(row);
  }
  table.Print(std::cout);

  std::cout << "\nBest improvement over the sweep: " << best_improvement
            << "% (paper: up to ~140%, i.e. 2.4x)\n"
            << "Shape check (paper §5.2.4): each skewed distribution has "
               "an optimal k; the uniform 50:50 column only degrades as "
               "k grows.\n";
  std::cout << "CSV: " << bench::CsvPath("fig10_cache_size_sweep") << "\n";
  return 0;
}
