// Ablation bench for the paper's footnote 2 (§5.1.3): how robust is the
// MEMS-buffer conclusion to the two prediction risks — the DRAM/MEMS
// unit-cost ratio and the MEMS/disk bandwidth ratio? Sweeps the plane,
// prints the win/loss regions, and reports the break-even cost ratio per
// bandwidth point and per bit-rate.
//
// The (cost, bandwidth) plane and both break-even searches run on the
// parallel sweep engine; the grid prints serially afterwards.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/table_printer.h"
#include "model/sensitivity.h"

int main() {
  using namespace memstream;

  auto disk = bench::AnalyticFutureDisk();
  model::SensitivityInputs inputs;
  inputs.disk_latency = model::DiskLatencyFn(disk);

  std::cout << "Footnote-2 sensitivity: when does MEMS buffering pay?\n"
            << "  (off-the-shelf box: DRAM <= 5 GB, DivX 100 KB/s "
               "streams; win = lower total buffering cost)\n\n";

  std::vector<double> cost_factors = {1, 2, 5, 10, 20, 50};
  const std::vector<double> bandwidth_factors = {0.25, 0.5, 1.0,
                                                 320.0 / 300.0, 2.0};
  if (bench::SmokeMode() && cost_factors.size() > 2) cost_factors.resize(2);

  CsvWriter csv(bench::CsvPath("ablation_sensitivity"),
                {"cost_factor", "bandwidth_factor", "k",
                 "percent_reduction", "wins"});

  struct Cell {
    bool ok = false;
    std::int64_t k = 0;
    double percent_reduction = 0;
    bool wins = false;
  };
  const std::int64_t bw_count =
      static_cast<std::int64_t>(bandwidth_factors.size());
  exp::SweepRunner runner;
  const auto cells = runner.Map(
      static_cast<std::int64_t>(cost_factors.size()) * bw_count,
      [&cost_factors, &bandwidth_factors, &inputs,
       bw_count](exp::TaskContext& ctx) {
        const double cost =
            cost_factors[static_cast<std::size_t>(ctx.index() / bw_count)];
        const double bandwidth = bandwidth_factors[static_cast<std::size_t>(
            ctx.index() % bw_count)];
        ctx.AddEvents(1);
        Cell cell;
        auto outcome = model::EvaluateSensitivity(inputs, cost, bandwidth);
        if (!outcome.ok()) return cell;
        cell.ok = true;
        cell.k = outcome.value().k;
        cell.percent_reduction = outcome.value().percent_reduction;
        cell.wins = outcome.value().mems_wins;
        return cell;
      });
  std::cout << "  Cdram/Cmems | Rmems/Rdisk = 0.25  0.5   1.0   1.07  "
               "2.0\n";
  for (std::size_t c = 0; c < cost_factors.size(); ++c) {
    const double cost = cost_factors[c];
    std::printf("  %11.0f |", cost);
    for (std::size_t b = 0; b < bandwidth_factors.size(); ++b) {
      const double bandwidth = bandwidth_factors[b];
      const Cell& cell = cells[c * bandwidth_factors.size() + b];
      if (!cell.ok) {
        std::printf("    x ");
        csv.AddRow(std::vector<std::string>{
            std::to_string(cost), std::to_string(bandwidth), "", "", "x"});
        continue;
      }
      std::printf(" %4.0f%%", cell.percent_reduction);
      csv.AddRow(std::vector<std::string>{
          std::to_string(cost), std::to_string(bandwidth),
          std::to_string(cell.k), std::to_string(cell.percent_reduction),
          cell.wins ? "win" : "lose"});
    }
    std::printf("\n");
  }

  std::cout << "\nBreak-even Cdram/Cmems ratio (DivX 100 KB/s):\n";
  TablePrinter breakeven({"Rmems/Rdisk", "break-even cost ratio"});
  struct Factor {
    bool ok = false;
    double value = 0;
  };
  const auto breakeven_rows = runner.Map(
      bw_count, [&bandwidth_factors, &inputs](exp::TaskContext& ctx) {
        ctx.AddEvents(1);
        Factor out;
        auto factor = model::BreakEvenCostFactor(
            inputs,
            bandwidth_factors[static_cast<std::size_t>(ctx.index())]);
        if (factor.ok()) {
          out.ok = true;
          out.value = factor.value();
        }
        return out;
      });
  for (std::size_t b = 0; b < bandwidth_factors.size(); ++b) {
    breakeven.AddRow({TablePrinter::Cell(bandwidth_factors[b], 2),
                      breakeven_rows[b].ok
                          ? TablePrinter::Cell(breakeven_rows[b].value, 2)
                          : "-"});
  }
  breakeven.Print(std::cout);

  std::cout << "\nBreak-even cost ratio per bit-rate (Rmems/Rdisk = "
               "1.07):\n";
  TablePrinter by_rate({"Media", "break-even cost ratio"});
  struct Media {
    const char* name;
    BytesPerSecond rate;
  };
  const std::vector<Media> media_points = {
      {"mp3 10KB/s", 10 * kKBps},
      {"DivX 100KB/s", 100 * kKBps},
      {"DVD 1MB/s", 1 * kMBps},
      {"HDTV 10MB/s", 10 * kMBps}};
  const auto by_rate_rows = runner.Map(
      static_cast<std::int64_t>(media_points.size()),
      [&media_points, &inputs](exp::TaskContext& ctx) {
        ctx.AddEvents(1);
        Factor out;
        model::SensitivityInputs per_rate = inputs;
        per_rate.bit_rate =
            media_points[static_cast<std::size_t>(ctx.index())].rate;
        auto factor = model::BreakEvenCostFactor(per_rate, 320.0 / 300.0);
        if (factor.ok()) {
          out.ok = true;
          out.value = factor.value();
        }
        return out;
      });
  for (std::size_t m = 0; m < media_points.size(); ++m) {
    by_rate.AddRow({media_points[m].name,
                    by_rate_rows[m].ok
                        ? TablePrinter::Cell(by_rate_rows[m].value, 2)
                        : "never below 1000"});
  }
  by_rate.Print(std::cout);

  std::cout << "\nShape check (footnote 2): the win region covers the "
               "whole cost_factor >= 10 band wherever the bank reaches "
               "disk-comparable bandwidth, exactly as the paper claims; "
               "low-bandwidth banks (0.25x) need many devices and push "
               "the break-even ratio up.\n";
  std::cout << "CSV: " << bench::CsvPath("ablation_sensitivity") << "\n";
  bench::RecordSweep("ablation_sensitivity", runner);
  return 0;
}
