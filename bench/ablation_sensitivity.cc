// Ablation bench for the paper's footnote 2 (§5.1.3): how robust is the
// MEMS-buffer conclusion to the two prediction risks — the DRAM/MEMS
// unit-cost ratio and the MEMS/disk bandwidth ratio? Sweeps the plane,
// prints the win/loss regions, and reports the break-even cost ratio per
// bandwidth point and per bit-rate.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/table_printer.h"
#include "model/sensitivity.h"

int main() {
  using namespace memstream;

  auto disk = bench::AnalyticFutureDisk();
  model::SensitivityInputs inputs;
  inputs.disk_latency = model::DiskLatencyFn(disk);

  std::cout << "Footnote-2 sensitivity: when does MEMS buffering pay?\n"
            << "  (off-the-shelf box: DRAM <= 5 GB, DivX 100 KB/s "
               "streams; win = lower total buffering cost)\n\n";

  const double cost_factors[] = {1, 2, 5, 10, 20, 50};
  const double bandwidth_factors[] = {0.25, 0.5, 1.0, 320.0 / 300.0, 2.0};

  CsvWriter csv(bench::CsvPath("ablation_sensitivity"),
                {"cost_factor", "bandwidth_factor", "k",
                 "percent_reduction", "wins"});
  std::cout << "  Cdram/Cmems | Rmems/Rdisk = 0.25  0.5   1.0   1.07  "
               "2.0\n";
  for (double cost : cost_factors) {
    std::printf("  %11.0f |", cost);
    for (double bandwidth : bandwidth_factors) {
      auto outcome = model::EvaluateSensitivity(inputs, cost, bandwidth);
      if (!outcome.ok()) {
        std::printf("    x ");
        csv.AddRow(std::vector<std::string>{
            std::to_string(cost), std::to_string(bandwidth), "", "", "x"});
        continue;
      }
      std::printf(" %4.0f%%", outcome.value().percent_reduction);
      csv.AddRow(std::vector<std::string>{
          std::to_string(cost), std::to_string(bandwidth),
          std::to_string(outcome.value().k),
          std::to_string(outcome.value().percent_reduction),
          outcome.value().mems_wins ? "win" : "lose"});
    }
    std::printf("\n");
  }

  std::cout << "\nBreak-even Cdram/Cmems ratio (DivX 100 KB/s):\n";
  TablePrinter breakeven({"Rmems/Rdisk", "break-even cost ratio"});
  for (double bandwidth : bandwidth_factors) {
    auto factor = model::BreakEvenCostFactor(inputs, bandwidth);
    breakeven.AddRow({TablePrinter::Cell(bandwidth, 2),
                      factor.ok() ? TablePrinter::Cell(factor.value(), 2)
                                  : "-"});
  }
  breakeven.Print(std::cout);

  std::cout << "\nBreak-even cost ratio per bit-rate (Rmems/Rdisk = "
               "1.07):\n";
  TablePrinter by_rate({"Media", "break-even cost ratio"});
  struct Media {
    const char* name;
    BytesPerSecond rate;
  };
  for (const auto& media :
       {Media{"mp3 10KB/s", 10 * kKBps}, Media{"DivX 100KB/s", 100 * kKBps},
        Media{"DVD 1MB/s", 1 * kMBps}, Media{"HDTV 10MB/s", 10 * kMBps}}) {
    model::SensitivityInputs per_rate = inputs;
    per_rate.bit_rate = media.rate;
    auto factor = model::BreakEvenCostFactor(per_rate, 320.0 / 300.0);
    by_rate.AddRow({media.name,
                    factor.ok() ? TablePrinter::Cell(factor.value(), 2)
                                : "never below 1000"});
  }
  by_rate.Print(std::cout);

  std::cout << "\nShape check (footnote 2): the win region covers the "
               "whole cost_factor >= 10 band wherever the bank reaches "
               "disk-comparable bandwidth, exactly as the paper claims; "
               "low-bandwidth banks (0.25x) need many devices and push "
               "the break-even ratio up.\n";
  std::cout << "CSV: " << bench::CsvPath("ablation_sensitivity") << "\n";
  return 0;
}
