// Regenerates Fig. 7: percentage reduction in buffering cost on the
// "off-the-shelf" 2007 system (DRAM capped at 5 GB; 20 GB of MEMS
// buffering from two devices costing $20) as the latency ratio
// L̄_disk(avg) / L̄_mems(max) sweeps 1..10.
//
//  (a) curves for the four media types;
//  (b) contour regions (25% / 50% / 75%) over the (ratio, bit-rate)
//      plane.
//
// For each configuration the server throughput target N is the maximum
// the *MEMS-less* system supports (DRAM- or bandwidth-limited), and the
// cost comparison holds N fixed, as in §5.1.3.
//
// Disk latency calibration: §5.1.3 states the no-MEMS DRAM requirement
// for 10 MB/s streams is "approximately 1.5GB", which Theorem 1 yields
// only when each disk IO is charged the average seek plus a FULL
// rotation (2.8 + 3.0 = 5.8 ms); our optimistic elevator estimate
// (~2.4 ms at N = 29) would make the HDTV workload too cheap to ever
// amortize the $20 MEMS buffer. This bench therefore uses the
// conservative 5.8 ms charge throughout, reproducing the paper's anchor.
//
// Both the (a) curve grid and the (b) contour grid are evaluated on the
// parallel sweep engine; emission stays in serial grid order.

#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/table_printer.h"
#include "model/cost.h"
#include "model/mems_buffer.h"
#include "model/stream.h"
#include "model/timecycle.h"

namespace {

using namespace memstream;

constexpr Bytes kDramCap = 5 * kGB;
constexpr std::int64_t kBufferDevices = 2;
constexpr Dollars kMemsCost = 20;  // 2 x $10

struct Point {
  double percent_reduction = 0;
  std::int64_t n = 0;
  bool feasible = false;
};

Point Evaluate(BytesPerSecond bit_rate, double ratio,
               const model::LatencyFn& latency) {
  Point out;
  // Throughput target: the best the MEMS-less box can do with 5 GB.
  out.n = model::MaxStreamsWithBuffer(kDramCap, bit_rate, 300 * kMBps,
                                      latency);
  if (out.n < 2) return out;

  model::DeviceProfile disk_profile;
  disk_profile.rate = 300 * kMBps;
  disk_profile.latency = latency(out.n);
  auto without = model::TotalBufferSize(out.n, bit_rate, disk_profile);
  if (!without.ok()) return out;
  const Dollars cost_without = without.value() * 20.0 / kGB;

  model::MemsBufferParams params;
  params.k = kBufferDevices;
  params.disk = disk_profile;
  params.mems = bench::MemsProfileAtRatio(ratio);
  auto with_mems = model::SolveMemsBuffer(out.n, bit_rate, params);
  if (!with_mems.ok()) return out;
  if (with_mems.value().dram_total > kDramCap) return out;
  const Dollars cost_with =
      kMemsCost + with_mems.value().dram_total * 20.0 / kGB;

  out.percent_reduction = model::PercentReduction(cost_without, cost_with);
  out.feasible = true;
  return out;
}

}  // namespace

int main() {
  // Average seek + full rotation (see calibration note above).
  const model::LatencyFn latency = bench::PaperConservativeDiskLatency();
  const Seconds conservative = latency(1);
  const int max_ratio = bench::SmokeMode() ? 3 : 10;

  std::cout << "Fig. 7(a): percentage cost reduction vs latency ratio\n"
            << "  (DRAM <= 5 GB, MEMS buffer = 2 devices / 20 GB / $20,\n"
            << "   disk IO latency charged at "
            << ToMs(conservative) << " ms -- see calibration note)\n\n";
  TablePrinter curves({"Latency ratio", "mp3 10KB/s", "DivX 100KB/s",
                       "DVD 1MB/s", "HDTV 10MB/s"});
  CsvWriter csv_a(bench::CsvPath("fig7a_cost_reduction"),
                  {"ratio", "media", "bit_rate_bps", "n",
                   "percent_reduction"});

  const auto media_classes = model::PaperStreamClasses();
  exp::SweepRunner runner;

  // (a): the (ratio, media) grid, flattened row-major.
  const std::int64_t media_count =
      static_cast<std::int64_t>(media_classes.size());
  const auto curve_points = runner.Map(
      max_ratio * media_count,
      [&media_classes, &latency, media_count](exp::TaskContext& ctx) {
        const int ratio = 1 + static_cast<int>(ctx.index() / media_count);
        const auto& media =
            media_classes[static_cast<std::size_t>(ctx.index() % media_count)];
        ctx.AddEvents(1);
        return Evaluate(media.bit_rate, ratio, latency);
      });
  for (int ratio = 1; ratio <= max_ratio; ++ratio) {
    std::vector<std::string> row{TablePrinter::Cell(
        static_cast<std::int64_t>(ratio))};
    for (std::int64_t m = 0; m < media_count; ++m) {
      const auto& media = media_classes[static_cast<std::size_t>(m)];
      const Point& p = curve_points[static_cast<std::size_t>(
          (ratio - 1) * media_count + m)];
      row.push_back(p.feasible
                        ? TablePrinter::Cell(p.percent_reduction, 1) + "%"
                        : "-");
      csv_a.AddRow(std::vector<std::string>{
          std::to_string(ratio), media.name,
          std::to_string(media.bit_rate), std::to_string(p.n),
          p.feasible ? std::to_string(p.percent_reduction) : ""});
    }
    curves.AddRow(row);
  }
  curves.Print(std::cout);

  std::cout << "\nFig. 7(b): cost-reduction regions over the (latency "
               "ratio, bit-rate) plane\n"
            << "  legend: '#' >75%   '+' 50-75%   '.' 25-50%   ' ' <25%  "
               " 'x' infeasible\n\n";
  CsvWriter csv_b(bench::CsvPath("fig7b_cost_reduction_regions"),
                  {"ratio", "bit_rate_bps", "percent_reduction"});
  std::vector<BytesPerSecond> rates;
  for (double b = 10 * kKBps; b <= 10 * kMBps * 1.0001; b *= 1.77827941) {
    rates.push_back(b);  // 12 log-spaced points per decade-and-a-half
  }
  if (bench::SmokeMode() && rates.size() > 4) rates.resize(4);

  // (b): the (bit-rate, ratio) plane, highest rate first as printed.
  const std::int64_t rate_count = static_cast<std::int64_t>(rates.size());
  const auto region_points = runner.Map(
      rate_count * max_ratio,
      [&rates, &latency, rate_count, max_ratio](exp::TaskContext& ctx) {
        const std::int64_t rate_idx =
            rate_count - 1 - ctx.index() / max_ratio;  // reverse order
        const int ratio = 1 + static_cast<int>(ctx.index() % max_ratio);
        ctx.AddEvents(1);
        return Evaluate(rates[static_cast<std::size_t>(rate_idx)], ratio,
                        latency);
      });
  std::cout << "  bit-rate [KB/s] | ratio 1..10\n";
  for (std::int64_t i = 0; i < rate_count; ++i) {
    const BytesPerSecond rate =
        rates[static_cast<std::size_t>(rate_count - 1 - i)];
    std::printf("  %14.0f | ", rate / kKBps);
    for (int ratio = 1; ratio <= max_ratio; ++ratio) {
      const Point& p = region_points[static_cast<std::size_t>(
          i * max_ratio + (ratio - 1))];
      char c = 'x';
      if (p.feasible) {
        c = p.percent_reduction >= 75   ? '#'
            : p.percent_reduction >= 50 ? '+'
            : p.percent_reduction >= 25 ? '.'
                                        : ' ';
      }
      std::printf("%c ", c);
      csv_b.AddRow(std::vector<std::string>{
          std::to_string(ratio), std::to_string(rate),
          p.feasible ? std::to_string(p.percent_reduction) : ""});
    }
    std::printf("\n");
  }

  std::cout << "\nShape check (paper §5.1.3): reduction grows with the "
               "latency ratio; HDTV is capped near 30% (its no-MEMS DRAM "
               "need is only ~1.5 GB); most of the plane sits above "
               "50-75%.\n";
  std::cout << "CSV: " << bench::CsvPath("fig7a_cost_reduction") << ", "
            << bench::CsvPath("fig7b_cost_reduction_regions") << "\n";
  bench::RecordSweep("fig7_cost_reduction", runner);
  return 0;
}
