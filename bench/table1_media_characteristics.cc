// Regenerates Table 1: storage media characteristics for 2002 and the
// 2007 predictions (DRAM / MEMS / Disk).

#include <iostream>

#include "bench_common.h"
#include "common/table_printer.h"

int main() {
  using namespace memstream;

  std::cout << "Table 1: Storage media characteristics (paper values)\n\n";
  TablePrinter table({"Year", "Medium", "Capacity [GB]", "Access time [ms]",
                      "Bandwidth [MB/s]", "Cost/GB", "Cost/device"});
  CsvWriter csv(bench::CsvPath("table1_media_characteristics"),
                {"year", "medium", "capacity_gb", "access_time_ms",
                 "bandwidth_mbps", "cost_per_gb", "cost_per_device"});
  for (const auto& row : device::Table1Rows()) {
    table.AddRow({std::to_string(row.year), row.medium, row.capacity_gb,
                  row.access_time_ms, row.bandwidth_mbps, row.cost_per_gb,
                  row.cost_per_device});
    csv.AddRow(std::vector<std::string>{
        std::to_string(row.year), row.medium, row.capacity_gb,
        row.access_time_ms, row.bandwidth_mbps, row.cost_per_gb,
        row.cost_per_device});
  }
  table.Print(std::cout);
  std::cout << "\nCSV: " << bench::CsvPath("table1_media_characteristics")
            << "\n";
  return 0;
}
