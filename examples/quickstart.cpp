// Quickstart: size a streaming server with and without a MEMS buffer,
// then execute both schedules in the simulator to confirm jitter-free
// playback.
//
//   $ ./quickstart [report_dir]
//
// Walks through the library's three core steps:
//   1. describe devices (Table 3 presets),
//   2. size buffers analytically (Theorems 1 and 2),
//   3. validate by simulation (MediaServer facade).
//
// With a report_dir argument, each validation run also writes a
// structured <mode>.report.json (analytic vs simulated, QoS audit,
// timelines) for tools/memstream-report to merge into a dashboard.

#include <cstdio>
#include <string>

#include "device/device_catalog.h"
#include "model/mems_buffer.h"
#include "model/profiles.h"
#include "model/timecycle.h"
#include "obs/run_report.h"
#include "server/media_server.h"

int main(int argc, char** argv) {
  using namespace memstream;
  const std::string report_dir = argc > 1 ? argv[1] : "";

  // --- 1. Devices: the paper's 2007 case study --------------------------
  device::DiskParameters disk_params = device::FutureDisk2007();
  disk_params.inner_rate = disk_params.outer_rate;  // analytic flat rate
  auto disk = device::DiskDrive::Create(disk_params);
  auto mems = device::MemsDevice::Create(device::MemsG3());
  if (!disk.ok() || !mems.ok()) {
    std::fprintf(stderr, "device setup failed\n");
    return 1;
  }
  std::printf("FutureDisk: %.0f MB/s, avg access %.2f ms\n",
              disk.value().MaxTransferRate() / kMBps,
              ToMs(disk.value().AverageAccessLatency()));
  std::printf("G3 MEMS:    %.0f MB/s, max access %.2f ms\n\n",
              mems.value().MaxTransferRate() / kMBps,
              ToMs(mems.value().MaxAccessLatency()));

  // --- 2. Analytics: 100 DVD-quality streams ----------------------------
  const std::int64_t n = 100;
  const BytesPerSecond bit_rate = 1 * kMBps;

  auto direct_dram = model::TotalBufferSize(
      n, bit_rate, model::DiskProfile(disk.value(), n));
  if (!direct_dram.ok()) {
    std::fprintf(stderr, "Theorem 1: %s\n",
                 direct_dram.status().ToString().c_str());
    return 1;
  }
  std::printf("Theorem 1 (disk -> DRAM):        %7.1f MB of DRAM\n",
              ToMB(direct_dram.value()));

  model::MemsBufferParams buffer;
  buffer.k = 2;
  buffer.disk = model::DiskProfile(disk.value(), n);
  buffer.mems = model::MemsProfileMaxLatency(mems.value());
  auto buffered = model::SolveMemsBuffer(n, bit_rate, buffer);
  if (!buffered.ok()) {
    std::fprintf(stderr, "Theorem 2: %s\n",
                 buffered.status().ToString().c_str());
    return 1;
  }
  std::printf("Theorem 2 (disk -> MEMS -> DRAM):%7.1f MB of DRAM "
              "(%.0fx less, plus 2 x $10 MEMS)\n\n",
              ToMB(buffered.value().dram_total),
              direct_dram.value() / buffered.value().dram_total);

  // --- 3. Validation: run both schedules --------------------------------
  for (auto mode :
       {server::ServerMode::kDirect, server::ServerMode::kMemsBuffer}) {
    obs::MetricsRegistry metrics;
    obs::TimelineRecorder timelines;
    server::MediaServerConfig config;
    config.mode = mode;
    config.disk = disk_params;
    config.k = 2;
    config.num_streams = n;
    config.bit_rate = bit_rate;
    config.sim_duration = 30;
    if (!report_dir.empty()) {
      config.metrics = &metrics;
      config.timelines = &timelines;
    }
    auto result = server::RunMediaServer(config);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", ServerModeName(mode),
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-12s simulated 30 s: %lld IOs, %lld underflows, "
                "%lld overruns, %lld audit violations, disk util %.0f%%\n",
                ServerModeName(mode),
                static_cast<long long>(result.value().ios_completed),
                static_cast<long long>(result.value().qos.underflow_events),
                static_cast<long long>(result.value().cycle_overruns),
                static_cast<long long>(result.value().qos.violations),
                100 * result.value().disk_utilization);
    if (!report_dir.empty()) {
      const obs::RunReport report =
          server::BuildRunReport(config, result.value(), &metrics);
      const std::string path = report_dir + "/" +
                               std::string(ServerModeName(mode)) +
                               ".report.json";
      if (auto st = report.WriteFile(path); !st.ok()) {
        std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                     st.ToString().c_str());
        return 1;
      }
      std::printf("             wrote %s\n", path.c_str());
    }
  }
  std::printf("\nBoth schedules are jitter-free; the MEMS buffer delivers "
              "the same streams with a fraction of the DRAM.\n");
  return 0;
}
