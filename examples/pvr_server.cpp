// A "PVR" workload: the §3.1 write-stream extension in action. One disk
// simultaneously plays back n streams and records m incoming feeds; the
// time-cycle schedule covers both directions, and leftover slack carries
// best-effort traffic (§3.1.2).
//
//   $ ./pvr_server [playback_streams] [recording_streams]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "device/device_catalog.h"
#include "model/profiles.h"
#include "model/timecycle.h"
#include "server/timecycle_server.h"

int main(int argc, char** argv) {
  using namespace memstream;

  const std::int64_t playing = argc > 1 ? std::atoll(argv[1]) : 60;
  const std::int64_t recording = argc > 2 ? std::atoll(argv[2]) : 20;
  const std::int64_t n = playing + recording;
  const BytesPerSecond b = 1 * kMBps;  // DVD-rate both ways

  device::DiskParameters params = device::FutureDisk2007();
  params.inner_rate = params.outer_rate;
  auto disk = device::DiskDrive::Create(params);
  if (!disk.ok()) return 1;

  // The cycle covers one IO per stream regardless of direction.
  auto cycle =
      model::IoCycleLength(n, b, model::DiskProfile(disk.value(), n));
  if (!cycle.ok()) {
    std::fprintf(stderr, "infeasible: %s\n",
                 cycle.status().ToString().c_str());
    return 1;
  }
  std::printf("PVR workload: %lld playback + %lld recording DVD streams\n",
              static_cast<long long>(playing),
              static_cast<long long>(recording));
  std::printf("Theorem 1 cycle for N=%lld: %.1f ms (%.2f MB per stream "
              "per cycle)\n\n",
              static_cast<long long>(n), ToMs(cycle.value()),
              ToMB(b * cycle.value()));

  std::vector<server::StreamSpec> streams;
  const Bytes stride = disk.value().Capacity() * 0.9 /
                       static_cast<double>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    server::StreamSpec s;
    s.id = i;
    s.bit_rate = b;
    s.disk_offset = stride * static_cast<double>(i);
    s.extent = std::max(stride, 3 * b * cycle.value() * 1.25);
    s.direction = i < playing ? server::StreamDirection::kRead
                              : server::StreamDirection::kWrite;
    streams.push_back(s);
  }

  server::DirectServerConfig config;
  // 25% above the Theorem-1 minimum: a bit more DRAM per stream buys
  // slack that the best-effort filler can use (at the exact minimum the
  // schedule has none to give).
  config.cycle = cycle.value() * 1.25;
  config.best_effort_io = 256 * kKB;
  auto server =
      server::DirectStreamingServer::Create(&disk.value(), streams, config);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }
  const Seconds horizon = 60;
  if (!server.value().Run(horizon).ok()) return 1;

  const server::ServerReport& report = server.value().report();
  std::printf("Simulated %.0f s:\n", horizon);
  std::printf("  playback underflows:   %lld (%.3f s)\n",
              static_cast<long long>(report.qos.underflow_events),
              report.qos.underflow_time);
  std::printf("  recording overflows:   %lld (%.3f s)\n",
              static_cast<long long>(report.qos.overflow_events),
              report.qos.overflow_time);
  std::printf("  cycle overruns:        %lld\n",
              static_cast<long long>(report.cycle_overruns));
  std::printf("  best-effort served:    %lld IOs (%.1f MB)\n",
              static_cast<long long>(report.best_effort_ios),
              ToMB(report.best_effort_bytes));
  std::printf("  disk utilization:      %.0f%%\n",
              100 * report.device_utilization);

  Bytes captured = 0;
  for (const auto& r : server.value().record_sessions()) {
    captured += r.total_drained();
  }
  std::printf("  captured to disk:      %.1f MB across %zu recorders\n",
              ToMB(captured), server.value().record_sessions().size());

  const bool clean =
      report.qos.underflow_events == 0 && report.qos.overflow_events == 0;
  std::printf("\n%s\n", clean
                            ? "Jitter-free playback and loss-free capture "
                              "on one schedule."
                            : "Schedule violated real-time constraints!");
  return clean ? 0 : 2;
}
