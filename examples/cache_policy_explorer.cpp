// Cache-policy explorer: sweep the popularity skew and watch where the
// striped and replicated policies cross over, both analytically (the
// Theorem 3/4 sizing inside the budget planner) and in simulation.
//
//   $ ./cache_policy_explorer

#include <cstdio>
#include <iostream>

#include "common/table_printer.h"
#include "device/device_catalog.h"
#include "model/planner.h"
#include "server/media_server.h"

int main() {
  using namespace memstream;

  auto disk = device::DiskDrive::Create(device::FutureDisk2007());
  auto mems = device::MemsDevice::Create(device::MemsG3());
  if (!disk.ok() || !mems.ok()) return 1;

  std::printf("Cache policy explorer: striped vs replicated, $200 / k=4, "
              "100 KB/s streams, 1 TB catalog\n\n");

  model::CacheSystemConfig base;
  base.total_budget = 200;
  base.dram_per_byte = 20.0 / kGB;
  base.mems_device_cost = 10;
  base.k = 4;
  base.mems_capacity = 10 * kGB;
  base.content_size = 1000 * kGB;
  base.bit_rate = 100 * kKBps;
  base.disk_rate = 300 * kMBps;
  base.disk_latency = model::DiskLatencyFn(disk.value());
  base.mems = model::MemsProfileMaxLatency(mems.value());

  const model::Popularity skews[] = {{0.005, 0.995}, {0.01, 0.99},
                                     {0.02, 0.98},   {0.05, 0.95},
                                     {0.10, 0.90},   {0.20, 0.80},
                                     {0.35, 0.65},   {0.50, 0.50}};

  TablePrinter table({"Popularity", "No cache", "Striped (p, streams)",
                      "Replicated (p, streams)", "Winner"});
  for (const auto& pop : skews) {
    base.popularity = pop;
    model::CacheSystemConfig none = base;
    none.k = 0;
    auto r_none = model::MaxCacheSystemThroughput(none);

    base.policy = model::CachePolicy::kStriped;
    auto r_striped = model::MaxCacheSystemThroughput(base);
    base.policy = model::CachePolicy::kReplicated;
    auto r_replicated = model::MaxCacheSystemThroughput(base);
    if (!r_none.ok() || !r_striped.ok() || !r_replicated.ok()) continue;

    const auto s = r_striped.value().total_streams;
    const auto r = r_replicated.value().total_streams;
    const auto n = r_none.value().total_streams;
    std::string winner = "no cache";
    if (s >= r && s > n) winner = "striped";
    if (r > s && r > n) winner = "replicated";
    table.AddRow(
        {std::to_string(static_cast<int>(pop.x * 1000) / 10.0).substr(0, 4) +
             ":" + std::to_string(static_cast<int>(pop.y * 100)),
         TablePrinter::Cell(n),
         "(" + TablePrinter::Cell(100 * r_striped.value().cached_fraction,
                                  1) +
             "%, " + TablePrinter::Cell(s) + ")",
         "(" + TablePrinter::Cell(
                   100 * r_replicated.value().cached_fraction, 1) +
             "%, " + TablePrinter::Cell(r) + ")",
         winner});
  }
  table.Print(std::cout);

  std::printf(
      "\nReading the table: replication wins at extreme skew (all the hot "
      "titles fit on one device and it halves the effective latency "
      "twice over); striping wins at moderate skew (it caches k x more "
      "content); toward uniform popularity the advantage shrinks to "
      "almost nothing (and turns into a loss at the paper's smaller "
      "budgets -- see bench/fig9_cache_throughput).\n\n");

  // Cross-check the two policies in simulation at a fixed stream count.
  std::printf("Simulation cross-check (60 cached streams, k=4):\n");
  for (auto policy :
       {model::CachePolicy::kStriped, model::CachePolicy::kReplicated}) {
    server::MediaServerConfig config;
    config.mode = server::ServerMode::kMemsCache;
    config.disk = device::FutureDisk2007();
    config.disk.inner_rate = config.disk.outer_rate;
    config.k = 4;
    config.cache_policy = policy;
    config.cached_fraction_of_streams = 1.0;  // cache-only population
    config.num_streams = 60;
    config.bit_rate = 100 * kKBps;
    config.sim_duration = 30;
    auto result = server::RunMediaServer(config);
    if (!result.ok()) {
      std::fprintf(stderr, "  %s: %s\n", model::CachePolicyName(policy),
                   result.status().ToString().c_str());
      continue;
    }
    std::printf("  %-10s analytic DRAM %7.2f MB, sim peak %7.2f MB, "
                "underflows %lld, MEMS util %.0f%%\n",
                model::CachePolicyName(policy),
                ToMB(result.value().analytic_dram_total),
                ToMB(result.value().sim_peak_dram),
                static_cast<long long>(result.value().qos.underflow_events),
                100 * result.value().mems_utilization);
  }
  return 0;
}
