// Video-on-demand capacity planner: given a buffering/caching budget and
// a workload description, compare every server architecture the paper
// proposes (DRAM-only, MEMS cache striped/replicated, hybrid
// buffer+cache) and recommend the best.
//
//   $ ./vod_capacity_planner [budget_dollars] [bit_rate_kbps] [x:y]
//   e.g. ./vod_capacity_planner 150 100 5:95

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table_printer.h"
#include "device/device_catalog.h"
#include "model/hybrid.h"
#include "model/planner.h"

namespace {

memstream::model::Popularity ParsePopularity(const std::string& text) {
  memstream::model::Popularity pop{0.1, 0.9};
  const auto colon = text.find(':');
  if (colon != std::string::npos) {
    pop.x = std::atof(text.substr(0, colon).c_str()) / 100.0;
    pop.y = std::atof(text.substr(colon + 1).c_str()) / 100.0;
  }
  return pop;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace memstream;

  const Dollars budget = argc > 1 ? std::atof(argv[1]) : 100.0;
  const BytesPerSecond bit_rate =
      (argc > 2 ? std::atof(argv[2]) : 100.0) * kKBps;
  const model::Popularity popularity =
      ParsePopularity(argc > 3 ? argv[3] : "10:90");
  if (!model::IsValidPopularity(popularity)) {
    std::fprintf(stderr, "invalid popularity (need 0 < X <= Y <= 100)\n");
    return 1;
  }

  auto disk = device::DiskDrive::Create(device::FutureDisk2007());
  auto mems = device::MemsDevice::Create(device::MemsG3());
  if (!disk.ok() || !mems.ok()) return 1;

  model::HybridConfig config;
  config.base.total_budget = budget;
  config.base.dram_per_byte = 20.0 / kGB;
  config.base.mems_device_cost = 10;
  config.base.policy = model::CachePolicy::kStriped;
  config.base.popularity = popularity;
  config.base.mems_capacity = 10 * kGB;
  config.base.content_size = 1000 * kGB;
  config.base.bit_rate = bit_rate;
  config.base.disk_rate = 300 * kMBps;
  config.base.disk_latency = model::DiskLatencyFn(disk.value());
  config.base.mems = model::MemsProfileMaxLatency(mems.value());
  config.max_devices =
      static_cast<std::int64_t>(budget / config.base.mems_device_cost);

  std::printf("VoD capacity planner\n");
  std::printf("  budget $%.0f, bit-rate %.0f KB/s, popularity %d:%d, "
              "catalog 1 TB on a 2007 FutureDisk\n\n",
              budget, bit_rate / kKBps,
              static_cast<int>(popularity.x * 100),
              static_cast<int>(popularity.y * 100));

  TablePrinter table({"Architecture", "Streams", "Hit rate", "DRAM [GB]",
                      "MEMS devices"});
  auto add = [&](const std::string& name,
                 const Result<model::CacheSystemThroughput>& result,
                 std::int64_t devices) {
    if (!result.ok()) {
      table.AddRow({name, "-", "-", "-", TablePrinter::Cell(devices)});
      return;
    }
    table.AddRow({name, TablePrinter::Cell(result.value().total_streams),
                  TablePrinter::Cell(result.value().hit_rate, 3),
                  TablePrinter::Cell(ToGB(result.value().dram_bytes), 2),
                  TablePrinter::Cell(devices)});
  };

  add("DRAM only", model::EvaluateHybridSplit(config, 0, 0), 0);

  // Best pure cache under each policy.
  for (auto policy :
       {model::CachePolicy::kStriped, model::CachePolicy::kReplicated}) {
    config.base.policy = policy;
    std::int64_t best_k = 0, best_streams = -1;
    for (std::int64_t k = 1; k <= config.max_devices; ++k) {
      auto r = model::EvaluateHybridSplit(config, 0, k);
      if (r.ok() && r.value().total_streams > best_streams) {
        best_streams = r.value().total_streams;
        best_k = k;
      }
    }
    add(std::string("MEMS cache (") + model::CachePolicyName(policy) +
            ", best k)",
        model::EvaluateHybridSplit(config, 0, best_k), best_k);
  }

  // Best pure buffer.
  config.base.policy = model::CachePolicy::kStriped;
  std::int64_t best_kb = 0, best_streams = -1;
  for (std::int64_t k = 1; k <= config.max_devices; ++k) {
    auto r = model::EvaluateHybridSplit(config, k, 0);
    if (r.ok() && r.value().total_streams > best_streams) {
      best_streams = r.value().total_streams;
      best_kb = k;
    }
  }
  add("MEMS buffer (best k)", model::EvaluateHybridSplit(config, best_kb, 0),
      best_kb);

  // Hybrid plan.
  auto plan = model::PlanHybrid(config);
  if (plan.ok()) {
    add("Hybrid (buffer " + std::to_string(plan.value().k_buffer) +
            " + cache " + std::to_string(plan.value().k_cache) + ")",
        Result<model::CacheSystemThroughput>(plan.value().throughput),
        plan.value().k_buffer + plan.value().k_cache);
  }

  table.Print(std::cout);
  if (plan.ok()) {
    std::printf("\nRecommendation: %lld buffering + %lld caching devices "
                "-> %lld concurrent streams.\n",
                static_cast<long long>(plan.value().k_buffer),
                static_cast<long long>(plan.value().k_cache),
                static_cast<long long>(
                    plan.value().throughput.total_streams));
  }
  return 0;
}
