// A day in the life of a MEMS-cached VoD server: build a catalog, sample
// a request trace under a skewed popularity, admit what fits, select the
// cache residents offline, and run the admitted load through the
// discrete-event simulator.
//
//   $ ./streaming_simulation [minutes_simulated]

#include <cstdio>
#include <cstdlib>

#include "device/device_catalog.h"
#include "model/mems_cache.h"
#include "model/planner.h"
#include "model/profiles.h"
#include "server/media_server.h"
#include "workload/arrival_sim.h"
#include "workload/catalog.h"
#include "workload/popularity.h"
#include "workload/request_gen.h"

int main(int argc, char** argv) {
  using namespace memstream;

  const Seconds horizon = (argc > 1 ? std::atof(argv[1]) : 1.0) * 60.0;

  // --- Catalog: 1000 DivX titles, ~90 minutes each ----------------------
  auto catalog = workload::Catalog::Uniform(1000, 100 * kKBps, 5400);
  if (!catalog.ok()) return 1;
  std::printf("Catalog: %lld titles, %.0f GB total\n",
              static_cast<long long>(catalog.value().size()),
              ToGB(catalog.value().TotalSize()));

  // --- Popularity and offline cache selection ---------------------------
  const model::Popularity popularity{0.05, 0.95};
  const Bytes cache_capacity = 2 * 10 * kGB;  // striped k=2 bank
  const auto residents =
      catalog.value().SelectCacheResidents(cache_capacity);
  const double p = model::CachedFraction(model::CachePolicy::kStriped, 2,
                                         10 * kGB,
                                         catalog.value().TotalSize());
  auto hit_rate = model::HitRate(popularity, p);
  if (!hit_rate.ok()) return 1;
  std::printf("Cache: %zu titles resident (p = %.1f%%), Eq. 11 hit rate "
              "h = %.3f\n",
              residents.size(), 100 * p, hit_rate.value());

  // --- Sample a request trace and measure the empirical hit rate --------
  auto sampler = workload::TwoClassSampler::Create(popularity,
                                                   catalog.value().size());
  if (!sampler.ok()) return 1;
  Rng rng(2026);
  auto requests = workload::GenerateRequests(
      catalog.value(),
      [&](Rng& r) { return sampler.value().Sample(r); },
      /*arrival_rate=*/2.0, horizon, rng);
  if (!requests.ok()) return 1;
  const auto stats =
      workload::MeasureHitRate(requests.value(), residents);
  std::printf("Trace: %lld requests over %.0f min, empirical hit rate "
              "%.3f\n\n",
              static_cast<long long>(stats.total), horizon / 60.0,
              stats.hit_rate);

  // --- Session-level view: can the planned capacity carry the trace? ----
  {
    model::CacheSystemConfig plan;
    plan.total_budget = 100;
    plan.k = 2;
    plan.policy = model::CachePolicy::kStriped;
    plan.popularity = popularity;
    plan.content_size = catalog.value().TotalSize();
    plan.bit_rate = 100 * kKBps;
    auto disk_dev = device::DiskDrive::Create(device::FutureDisk2007());
    if (!disk_dev.ok()) return 1;
    plan.disk_latency = model::DiskLatencyFn(disk_dev.value());
    auto mems_dev = device::MemsDevice::Create(device::MemsG3());
    if (!mems_dev.ok()) return 1;
    plan.mems = model::MemsProfileMaxLatency(mems_dev.value());
    auto capacity = model::MaxCacheSystemThroughput(plan);
    if (capacity.ok() && capacity.value().total_streams > 0) {
      // A long synthetic day at an offered load near the planned
      // capacity, so the blocking behaviour is visible.
      const double arrival_rate =
          static_cast<double>(capacity.value().total_streams) / 5400.0;
      const Seconds day = 12 * 3600.0;
      Rng day_rng(7);
      auto day_trace = workload::GenerateRequests(
          catalog.value(),
          [&](Rng& r) { return sampler.value().Sample(r); }, arrival_rate,
          day, day_rng);
      if (day_trace.ok()) {
        auto study = workload::StudyAdmission(
            day_trace.value(), capacity.value().total_streams, day);
        if (study.ok()) {
          const double offered_erlangs = arrival_rate * 5400.0;
          std::printf(
              "Load study (12 h at ~capacity): planner capacity %lld "
              "streams ($100 budget), offered %.0f erlangs\n"
              "  admitted %lld / rejected %lld (%.1f%%; Erlang-B "
              "predicts %.1f%%), mean occupancy %.0f (util %.0f%%)\n\n",
              static_cast<long long>(capacity.value().total_streams),
              offered_erlangs,
              static_cast<long long>(study.value().admitted),
              static_cast<long long>(study.value().rejected),
              100 * study.value().rejection_rate,
              100 * workload::ErlangB(offered_erlangs,
                                      capacity.value().total_streams),
              study.value().mean_occupancy,
              100 * study.value().utilization);
        }
      }
    }
  }

  // --- Simulate the concurrent load at the peak -------------------------
  // Steady-state concurrency ~ arrival rate x duration, but simulate a
  // modest concurrent slice so the run stays fast.
  server::MediaServerConfig config;
  config.mode = server::ServerMode::kMemsCache;
  config.disk = device::FutureDisk2007();
  config.disk.inner_rate = config.disk.outer_rate;
  config.k = 2;
  config.cache_policy = model::CachePolicy::kStriped;
  config.cached_fraction_of_streams = hit_rate.value();
  config.num_streams = 120;
  config.bit_rate = 100 * kKBps;
  config.sim_duration = horizon;
  auto result = server::RunMediaServer(config);
  if (!result.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("Simulated %lld concurrent streams for %.0f min:\n",
              static_cast<long long>(config.num_streams), horizon / 60.0);
  std::printf("  IOs completed:   %lld\n",
              static_cast<long long>(result.value().ios_completed));
  std::printf("  underflows:      %lld (%.3f s dry)\n",
              static_cast<long long>(result.value().qos.underflow_events),
              result.value().qos.underflow_time);
  std::printf("  cycle overruns:  %lld\n",
              static_cast<long long>(result.value().cycle_overruns));
  std::printf("  disk / MEMS util: %.0f%% / %.0f%%\n",
              100 * result.value().disk_utilization,
              100 * result.value().mems_utilization);
  std::printf("  DRAM: analytic %.1f MB, simulated peak %.1f MB\n",
              ToMB(result.value().analytic_dram_total),
              ToMB(result.value().sim_peak_dram));
  return result.value().qos.underflow_events == 0 ? 0 : 2;
}
